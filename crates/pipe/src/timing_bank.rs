//! The factored sweep's timing pass: one trace decode drives a bank of
//! annotated timing configurations through shared front-end passes.
//!
//! An annotated [`CycleSim`](crate::CycleSim) spends most of its time in
//! state that is *identical across sweep cells*: the register/spill plan
//! depends only on the trace and the platform's logical register count,
//! and predictor evolution depends only on the trace and the predictor
//! family — both shared by construction across a sweep's timing axis
//! (every cell keeps the base platform's register file and if-conversion
//! mode). [`TimingBank`] therefore runs the phased engine's register
//! pass once per chunk, each distinct predictor family once per chunk,
//! and only the irreducible serial timing core (pass D) plus the cheap
//! annotation-to-latency mapping per lane. Every lane's result is
//! bit-identical to an independent `CycleSim::with_annotations` replay —
//! pinned by this module's tests and, transitively, by the sweep's
//! factored-vs-oracle self-check.

use std::sync::Arc;

use bioperf_branch::{DynPredictor, PredictorKind};
use bioperf_cache::{AnnotationStream, HierarchyStats, LatencyConfig};
use bioperf_isa::{MicroOp, OpKind, Program, StaticId};
use bioperf_trace::{
    OpBlock, TraceConsumer, REG_EVENT_DST, REG_EVENT_DST_LOAD, REG_EVENT_IDX_SHIFT,
    REG_EVENT_POS,
};

use crate::config::PlatformConfig;
use crate::regfile::RegFile;
use crate::simulator::{
    SimResult, FLAG_REDIRECT, ISSUE_COUNT_BITS, ISSUE_COUNT_MASK, ISSUE_RING, PHASE_CHUNK,
    READY_RING, SINK_SLOT, SPILL_MASK, SRC_RELOAD_COMPUTED, SRC_RELOAD_LOAD, ZERO_SLOT,
};

// Merged access-event tags, in the exact pop order of
// `CycleSim::block_pass_memory`: an op's spill reloads precede its own
// demand access, and a computed-value reload pops a store annotation
// before its load annotation.
const ACC_INT_LOAD: u32 = 0;
const ACC_FP_LOAD: u32 = 1;
const ACC_STORE: u32 = 2;
const ACC_SPILL_LOAD: u32 = 3;
const ACC_SPILL_COMPUTED: u32 = 4;
const ACC_TAG_BITS: u32 = 3;

/// One timing configuration's private state: annotation cursor, latency
/// tables, and the serial scheduling core (ready ring, issue ring, ROB,
/// front end).
#[derive(Debug, Clone)]
struct TimingLane {
    // Cell shape.
    in_order: bool,
    fetch_width: u32,
    issue_width: u64,
    rob_size: usize,
    mispredict_penalty: u64,
    spill_forward_extra: u64,
    fp_load_extra: u64,
    lat_lut: [u32; 12],
    /// Index into the bank's predictor families.
    family: usize,
    // Annotation cursor (`CycleSim`'s `AnnCursor`).
    stream: Arc<AnnotationStream>,
    pos: usize,
    ann_lat: [u64; 4],
    // Pass D state, field-for-field the timing half of `CycleSim`.
    fetch_cycle: u64,
    fetched_this_cycle: u32,
    issue_ring: Vec<u64>,
    ready_cycle: Vec<u64>,
    rob: Vec<u64>,
    rob_head: usize,
    rob_len: usize,
    last_issue: u64,
    max_completion: u64,
    // Per-chunk scratch.
    flags: Vec<u8>,
    lat: Vec<u32>,
    spill_lat: Vec<u32>,
}

impl TimingLane {
    /// One annotation pop: the miss level's total latency on this lane.
    #[inline]
    fn pop(&mut self) -> u64 {
        let code = self.stream.code(self.pos);
        self.pos += 1;
        self.ann_lat[code as usize]
    }

    /// Fills this lane's latency plan for one chunk: base LUT over the
    /// kind codes, then the merged access events in pop order, then the
    /// branch resolutions (latency 1).
    fn fill_latencies(&mut self, codes: &[u8], acc: &[u32], branches: &[(u32, StaticId, bool)]) {
        self.lat.clear();
        self.lat.extend(codes.iter().map(|&c| self.lat_lut[c as usize]));
        self.spill_lat.clear();
        for &ev in acc {
            let ci = (ev >> ACC_TAG_BITS) as usize;
            match ev & ((1 << ACC_TAG_BITS) - 1) {
                ACC_INT_LOAD => self.lat[ci] = self.pop() as u32,
                ACC_FP_LOAD => self.lat[ci] = (self.pop() + self.fp_load_extra) as u32,
                ACC_STORE => {
                    self.pop();
                }
                ACC_SPILL_LOAD => {
                    let l = self.pop();
                    self.spill_lat.push(l as u32);
                }
                _ => {
                    // Computed-value reload: the spill store pops first,
                    // then the reload plus the forwarding stall.
                    self.pop();
                    let l = self.pop() + self.spill_forward_extra;
                    self.spill_lat.push(l as u32);
                }
            }
        }
        for &(ci, _, _) in branches {
            self.lat[ci as usize] = 1;
        }
    }

    /// `CycleSim::issue_at`, on lane state.
    fn issue_at(&mut self, earliest: u64) -> u64 {
        let mut c = earliest;
        loop {
            let slot = &mut self.issue_ring[(c as usize) & (ISSUE_RING - 1)];
            let packed = *slot;
            if packed >> ISSUE_COUNT_BITS != c {
                *slot = (c << ISSUE_COUNT_BITS) | 1;
                return c;
            }
            if packed & ISSUE_COUNT_MASK < self.issue_width {
                *slot = packed + 1;
                return c;
            }
            c += 1;
        }
    }

    /// `CycleSim::dispatch`, on lane state.
    fn dispatch(&mut self) -> u64 {
        if self.fetched_this_cycle >= self.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        if self.rob_len == self.rob_size {
            let head = self.rob[self.rob_head];
            self.rob_head += 1;
            if self.rob_head == self.rob_size {
                self.rob_head = 0;
            }
            self.rob_len -= 1;
            if head > self.fetch_cycle {
                self.fetch_cycle = head;
                self.fetched_this_cycle = 0;
            }
        }
        self.fetched_this_cycle += 1;
        self.fetch_cycle
    }

    /// `CycleSim::block_pass_timing`, on lane state with the bank's
    /// shared operand plan.
    fn run_chunk<const IN_ORDER: bool>(&mut self, n: usize, src: &[[u32; 3]], dst: &[u32]) {
        let mut spill_idx = 0usize;
        for i in 0..n {
            let dispatch = self.dispatch();
            let flags = self.flags[i];
            let slots = src[i];
            let operands = if flags & SPILL_MASK == 0 {
                let a = self.ready_cycle[slots[0] as usize];
                let b = self.ready_cycle[slots[1] as usize];
                let c = self.ready_cycle[slots[2] as usize];
                a.max(b).max(c)
            } else {
                let mut operands = 0u64;
                for (j, &slot) in slots.iter().enumerate() {
                    let base = self.ready_cycle[slot as usize];
                    let code = (flags >> (2 * j)) & 0b11;
                    if code == 0 {
                        operands = operands.max(base);
                        continue;
                    }
                    self.fetched_this_cycle += 1;
                    if code == SRC_RELOAD_COMPUTED {
                        self.issue_at(dispatch);
                    }
                    let start = self.issue_at(dispatch.max(base));
                    let ready = start + self.spill_lat[spill_idx] as u64;
                    spill_idx += 1;
                    self.ready_cycle[slot as usize] = ready;
                    operands = operands.max(ready);
                }
                operands
            };
            let mut earliest = dispatch.max(operands);
            if IN_ORDER {
                earliest = earliest.max(self.last_issue);
            }
            let start = self.issue_at(earliest);
            if IN_ORDER {
                self.last_issue = start;
            }
            let completion = start + self.lat[i] as u64;
            if flags & FLAG_REDIRECT != 0
                && !crate::inject::active(crate::inject::DROPPED_FLUSH)
            {
                let redirect = completion + self.mispredict_penalty;
                if redirect > self.fetch_cycle {
                    self.fetch_cycle = redirect;
                    self.fetched_this_cycle = 0;
                }
            }
            self.ready_cycle[dst[i] as usize] = completion;
            let mut pos = self.rob_head + self.rob_len;
            if pos >= self.rob_size {
                pos -= self.rob_size;
            }
            self.rob[pos] = completion;
            self.rob_len += 1;
            if completion > self.max_completion {
                self.max_completion = completion;
            }
        }
    }
}

/// Replays a trace once through a bank of annotated timing
/// configurations, sharing the register/spill plan across every lane and
/// each predictor family across its lanes.
///
/// All lanes must share the platform's `logical_regs` and
/// `if_conversion` (true of every sweep grid cell — both come from the
/// base platform, not the swept axes); [`Self::push_lane`] panics
/// otherwise. Each lane's [`SimResult`] is bit-identical to replaying an
/// independent `CycleSim::new(cfg).with_predictor(pred)
/// .with_annotations(stream)`.
#[derive(Debug)]
pub struct TimingBank {
    logical_regs: u32,
    if_conversion: bool,
    // Shared front: the register/spill plan state.
    regs: RegFile,
    ready_tag: Vec<u64>,
    ready_from_load: Vec<bool>,
    instructions: u64,
    branches: u64,
    spill_stores: u64,
    spill_reloads: u64,
    // One predictor per distinct family among the lanes.
    pred_kinds: Vec<PredictorKind>,
    preds: Vec<DynPredictor>,
    fam_mispredicts: Vec<u64>,
    fam_redirects: Vec<Vec<u32>>,
    // Shared per-chunk plan (the phased engine's pass A output plus the
    // merged access-event and branch-outcome sequences).
    sc_flags: Vec<u8>,
    sc_src: Vec<[u32; 3]>,
    sc_dst: Vec<u32>,
    sc_spill_ev: Vec<u32>,
    sc_acc: Vec<u32>,
    sc_branch: Vec<(u32, StaticId, bool)>,
    lanes: Vec<TimingLane>,
}

impl TimingBank {
    /// An empty bank over the shared platform invariants.
    pub fn new(logical_regs: u32, if_conversion: bool) -> Self {
        Self {
            logical_regs,
            if_conversion,
            regs: RegFile::new(logical_regs),
            ready_tag: vec![u64::MAX; READY_RING],
            ready_from_load: vec![false; READY_RING],
            instructions: 0,
            branches: 0,
            spill_stores: 0,
            spill_reloads: 0,
            pred_kinds: Vec::new(),
            preds: Vec::new(),
            fam_mispredicts: Vec::new(),
            fam_redirects: Vec::new(),
            sc_flags: Vec::new(),
            sc_src: Vec::new(),
            sc_dst: Vec::new(),
            sc_spill_ev: Vec::new(),
            sc_acc: Vec::new(),
            sc_branch: Vec::new(),
            lanes: Vec::new(),
        }
    }

    /// Adds one timing configuration: a platform shape, a predictor
    /// family, and its precomputed miss-level stream.
    pub fn push_lane(
        &mut self,
        cfg: &PlatformConfig,
        pred: PredictorKind,
        stream: Arc<AnnotationStream>,
    ) {
        assert_eq!(cfg.logical_regs, self.logical_regs, "lanes must share the register file");
        assert_eq!(cfg.if_conversion, self.if_conversion, "lanes must share if-conversion");
        let family = match self.pred_kinds.iter().position(|&k| k == pred) {
            Some(f) => f,
            None => {
                self.pred_kinds.push(pred);
                self.preds.push(DynPredictor::new(pred));
                self.fam_mispredicts.push(0);
                self.fam_redirects.push(Vec::new());
                self.pred_kinds.len() - 1
            }
        };
        let mut lat_lut = [1u32; 12];
        for kind in OpKind::ALL {
            if !kind.is_load() && !kind.is_store() {
                lat_lut[kind.code() as usize] = cfg.op_latency(kind) as u32;
            }
        }
        let lat = LatencyConfig {
            l1: cfg.int_load_latency,
            l2: cfg.l2_latency,
            memory: cfg.memory_latency,
        };
        // Same skew hook as `CycleSim::with_annotations`: an armed
        // `factored-annotation-skew` fault starts the cursor one in.
        let pos = bioperf_trace::inject::active(bioperf_trace::inject::ANN_SKEW) as usize;
        self.lanes.push(TimingLane {
            in_order: cfg.in_order,
            fetch_width: cfg.fetch_width,
            issue_width: cfg.issue_width as u64,
            rob_size: cfg.rob_size,
            mispredict_penalty: cfg.mispredict_penalty,
            spill_forward_extra: cfg.spill_forward_extra,
            fp_load_extra: cfg.fp_load_latency.saturating_sub(cfg.int_load_latency),
            lat_lut,
            family,
            stream,
            pos,
            ann_lat: [
                lat.total(false, false),
                lat.total(true, false),
                lat.total(true, true),
                lat.total(false, false),
            ],
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            issue_ring: vec![u64::MAX; ISSUE_RING],
            ready_cycle: vec![0; READY_RING + 2],
            rob: vec![0; cfg.rob_size],
            rob_head: 0,
            rob_len: 0,
            last_issue: 0,
            max_completion: 0,
            flags: Vec::new(),
            lat: Vec::new(),
            spill_lat: Vec::new(),
        });
    }

    /// Lanes pushed so far.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the bank has no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Final per-lane results, in push order. `SimResult::cache` is
    /// zeroed exactly as in annotated `CycleSim` replay: the cache pass
    /// that produced the streams owns the hierarchy stats.
    pub fn into_results(self) -> Vec<SimResult> {
        self.lanes
            .iter()
            .map(|lane| SimResult {
                cycles: lane.max_completion.max(lane.fetch_cycle),
                instructions: self.instructions,
                branches: self.branches,
                mispredicts: self.fam_mispredicts[lane.family],
                spill_stores: self.spill_stores,
                spill_reloads: self.spill_reloads,
                cache: HierarchyStats::default(),
            })
            .collect()
    }

    /// Pass A for one chunk — `CycleSim::block_pass_regs` on the shared
    /// register state, without spill addresses (annotated pops ignore
    /// them).
    fn chunk_pass_regs(&mut self, block: &OpBlock, lo: usize, hi: usize, ev: &mut usize) {
        let n = hi - lo;
        self.sc_flags.clear();
        self.sc_flags.resize(n, 0);
        self.sc_src.clear();
        self.sc_src.resize(n, [ZERO_SLOT; 3]);
        self.sc_dst.clear();
        self.sc_dst.resize(n, SINK_SLOT);
        self.sc_spill_ev.clear();
        let metas = block.reg_event_meta();
        let vregs = block.reg_event_vreg();
        let end = (hi as u32) << REG_EVENT_IDX_SHIFT;
        while *ev < metas.len() {
            let meta = metas[*ev];
            if meta >= end {
                break;
            }
            let v = vregs[*ev];
            *ev += 1;
            let ci = (meta >> REG_EVENT_IDX_SHIFT) as usize - lo;
            let slot = (v as usize) & (READY_RING - 1);
            if meta & REG_EVENT_DST != 0 {
                self.ready_tag[slot] = v;
                self.ready_from_load[slot] = meta & REG_EVENT_DST_LOAD != 0;
                self.regs.insert(v);
                self.sc_dst[ci] = slot as u32;
                continue;
            }
            if self.ready_tag[slot] != v {
                continue;
            }
            let pos = (meta & REG_EVENT_POS) as usize;
            self.sc_src[ci][pos] = slot as u32;
            if !self.regs.touch(v) {
                self.spill_reloads += 1;
                let computed = !self.ready_from_load[slot];
                if computed {
                    self.spill_stores += 1;
                    self.sc_flags[ci] |= SRC_RELOAD_COMPUTED << (2 * pos);
                } else {
                    self.sc_flags[ci] |= SRC_RELOAD_LOAD << (2 * pos);
                }
                self.sc_spill_ev.push((ci as u32) << 1 | computed as u32);
                self.regs.insert(v);
            }
        }
    }

    /// The chunk's merged access events, in `block_pass_memory`'s pop
    /// order: pass A's spill plan interleaved with the pre-filtered
    /// demand column, ties toward the spill stream.
    fn chunk_pass_accesses(&mut self, block: &OpBlock, lo: usize, hi: usize, mem: &mut usize) {
        self.sc_acc.clear();
        let codes = &block.kind_codes()[lo..hi];
        let mem_idx = block.mem_idx();
        let mem_loads = block.mem_loads();
        let end = hi as u32;
        let mut sp = 0;
        loop {
            let mem_ci = if *mem < mem_idx.len() && mem_idx[*mem] < end {
                mem_idx[*mem] - lo as u32
            } else {
                u32::MAX
            };
            let sp_ci = if sp < self.sc_spill_ev.len() {
                self.sc_spill_ev[sp] >> 1
            } else {
                u32::MAX
            };
            if sp_ci <= mem_ci {
                if sp_ci == u32::MAX {
                    break;
                }
                let tag = if self.sc_spill_ev[sp] & 1 != 0 {
                    ACC_SPILL_COMPUTED
                } else {
                    ACC_SPILL_LOAD
                };
                self.sc_acc.push(sp_ci << ACC_TAG_BITS | tag);
                sp += 1;
                continue;
            }
            let e = *mem;
            *mem += 1;
            let ci = mem_ci as usize;
            let code = codes[ci];
            if code > OpKind::FpStore.code() {
                continue;
            }
            let tag = if !mem_loads[e] {
                ACC_STORE
            } else if code == OpKind::FpLoad.code() {
                ACC_FP_LOAD
            } else {
                ACC_INT_LOAD
            };
            self.sc_acc.push(mem_ci << ACC_TAG_BITS | tag);
        }
    }

    /// The chunk's branch outcomes, merged as in `block_pass_memory`,
    /// then one predictor walk per family.
    fn chunk_pass_branches(&mut self, block: &OpBlock, lo: usize, hi: usize, br: &mut usize, sel: &mut usize) {
        self.sc_branch.clear();
        let end = hi as u32;
        let branch_idx = block.branch_idx();
        let branch_sids = block.branch_sids();
        let branch_taken = block.branch_taken();
        if self.if_conversion {
            while *br < branch_idx.len() && branch_idx[*br] < end {
                let e = *br;
                *br += 1;
                self.sc_branch.push((branch_idx[e] - lo as u32, branch_sids[e], branch_taken[e]));
            }
            let select_idx = block.select_idx();
            while *sel < select_idx.len() && select_idx[*sel] < end {
                *sel += 1;
            }
        } else {
            let select_idx = block.select_idx();
            let select_sids = block.select_sids();
            let select_taken = block.select_taken();
            loop {
                let b = branch_idx.get(*br).copied().unwrap_or(u32::MAX);
                let s = select_idx.get(*sel).copied().unwrap_or(u32::MAX);
                let idx = b.min(s);
                if idx >= end {
                    break;
                }
                let (sid, taken) = if b < s {
                    let e = *br;
                    *br += 1;
                    (branch_sids[e], branch_taken[e])
                } else {
                    let e = *sel;
                    *sel += 1;
                    (select_sids[e], select_taken[e])
                };
                self.sc_branch.push((idx - lo as u32, sid, taken));
            }
        }
        self.branches += self.sc_branch.len() as u64;
        for f in 0..self.preds.len() {
            self.fam_redirects[f].clear();
            for &(ci, sid, taken) in &self.sc_branch {
                if !self.preds[f].observe(sid, taken) {
                    self.fam_mispredicts[f] += 1;
                    self.fam_redirects[f].push(ci);
                }
            }
        }
    }

    /// Runs every lane over the shared chunk plan.
    fn chunk_pass_lanes(&mut self, codes: &[u8]) {
        let n = codes.len();
        for lane in &mut self.lanes {
            lane.fill_latencies(codes, &self.sc_acc, &self.sc_branch);
            lane.flags.clear();
            lane.flags.extend_from_slice(&self.sc_flags);
            for &ci in &self.fam_redirects[lane.family] {
                lane.flags[ci as usize] |= FLAG_REDIRECT;
            }
            if lane.in_order {
                lane.run_chunk::<true>(n, &self.sc_src, &self.sc_dst);
            } else {
                lane.run_chunk::<false>(n, &self.sc_src, &self.sc_dst);
            }
        }
    }
}

impl TraceConsumer for TimingBank {
    /// The per-op reference path: a degenerate one-op chunk through the
    /// same shared-plan machinery (mirrors `CachePassSim::consume`'s
    /// ordering — operand resolution, then the op's own access, then
    /// destination tags).
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.instructions += 1;
        self.sc_flags.clear();
        self.sc_flags.push(0);
        self.sc_src.clear();
        self.sc_src.push([ZERO_SLOT; 3]);
        self.sc_dst.clear();
        self.sc_dst.push(SINK_SLOT);
        self.sc_acc.clear();
        self.sc_branch.clear();
        for (pos, src) in op.sources().enumerate() {
            let slot = (src.0 as usize) & (READY_RING - 1);
            if self.ready_tag[slot] != src.0 {
                continue;
            }
            self.sc_src[0][pos] = slot as u32;
            if !self.regs.touch(src.0) {
                self.spill_reloads += 1;
                let computed = !self.ready_from_load[slot];
                let tag = if computed {
                    self.spill_stores += 1;
                    self.sc_flags[0] |= SRC_RELOAD_COMPUTED << (2 * pos);
                    ACC_SPILL_COMPUTED
                } else {
                    self.sc_flags[0] |= SRC_RELOAD_LOAD << (2 * pos);
                    ACC_SPILL_LOAD
                };
                self.sc_acc.push(tag);
                self.regs.insert(src.0);
            }
        }
        match op.kind {
            OpKind::IntLoad => self.sc_acc.push(ACC_INT_LOAD),
            OpKind::FpLoad => self.sc_acc.push(ACC_FP_LOAD),
            OpKind::IntStore | OpKind::FpStore => self.sc_acc.push(ACC_STORE),
            _ => {}
        }
        let is_branch = op.kind == OpKind::CondBranch
            || (op.kind == OpKind::CondMove && !self.if_conversion);
        if is_branch {
            self.sc_branch.push((0, op.sid, op.taken));
            self.branches += 1;
            for f in 0..self.preds.len() {
                self.fam_redirects[f].clear();
                if !self.preds[f].observe(op.sid, op.taken) {
                    self.fam_mispredicts[f] += 1;
                    self.fam_redirects[f].push(0);
                }
            }
        } else {
            for f in 0..self.preds.len() {
                self.fam_redirects[f].clear();
            }
        }
        if let Some(dst) = op.dst {
            let slot = (dst.0 as usize) & (READY_RING - 1);
            self.ready_tag[slot] = dst.0;
            self.ready_from_load[slot] = op.kind.is_load();
            self.regs.insert(dst.0);
            self.sc_dst[0] = slot as u32;
        }
        let code = [op.kind.code()];
        self.chunk_pass_lanes(&code);
    }

    fn consume_block(&mut self, block: &OpBlock, _program: &Program) {
        let n = block.len();
        let (mut ev, mut mem, mut br, mut sel) = (0usize, 0usize, 0usize, 0usize);
        let mut lo = 0;
        while lo < n {
            let hi = (lo + PHASE_CHUNK).min(n);
            self.instructions += (hi - lo) as u64;
            self.chunk_pass_regs(block, lo, hi, &mut ev);
            self.chunk_pass_accesses(block, lo, hi, &mut mem);
            self.chunk_pass_branches(block, lo, hi, &mut br, &mut sel);
            let codes = &block.kind_codes()[lo..hi];
            // Split borrows: the lanes pass reads only the shared plan.
            let codes = codes.to_vec();
            self.chunk_pass_lanes(&codes);
            lo = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::CachePassSim;
    use crate::simulator::CycleSim;
    use bioperf_branch::PredictorKind;
    use bioperf_isa::here;
    use bioperf_trace::{Recorder, Tape, Tracer};

    fn spill_heavy_recording() -> bioperf_trace::Recording {
        let mut tape = Tape::new(Recorder::new());
        let xs: Vec<u64> = (0..512).map(|i| i * 3).collect();
        let mut state = 0xFEED_F00Du64;
        let mut rand_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        for r in 0..400usize {
            let temps: Vec<_> =
                (0..12).map(|i| tape.int_load(here!("t"), &xs[(r * 7 + i) % 512])).collect();
            let mut acc = tape.lit();
            for v in &temps {
                acc = tape.int_op(here!("t"), &[acc, *v]);
            }
            let sel = tape.select(here!("t"), &[acc], rand_bit());
            tape.branch(here!("t"), &[sel], rand_bit());
            let f = tape.fp_load(here!("t"), &xs[r % 512]);
            let g = tape.fp_op(here!("t"), &[f]);
            tape.fp_store(here!("t"), &xs[(r * 13) % 512], g);
        }
        let (program, rec) = tape.finish();
        rec.into_recording(program)
    }

    /// Timing-axis variants of a base platform (latency triple, pipe
    /// shape), as the sweep derives them.
    fn variants(base: PlatformConfig) -> Vec<PlatformConfig> {
        let mut v = Vec::new();
        for (l1, l2, mem) in [(3, 8, 72), (2, 5, 60)] {
            for (width, rob) in [(2u32, 32usize), (6, 128)] {
                let mut cfg = base;
                cfg.int_load_latency = l1;
                cfg.fp_load_latency = l1 + 1;
                cfg.l2_latency = l2;
                cfg.memory_latency = mem;
                cfg.issue_width = width;
                cfg.fetch_width = width;
                cfg.rob_size = rob;
                v.push(cfg);
            }
        }
        v
    }

    /// Every lane of a heterogeneous bank (mixed latencies, pipe shapes,
    /// predictor families, and annotation streams) must be bit-identical
    /// to an independent annotated `CycleSim`, blocked and per-op.
    #[test]
    fn bank_lanes_match_independent_annotated_cyclesims() {
        let recording = spill_heavy_recording();
        for base in PlatformConfig::all() {
            // Two cache-axis geometries' annotation streams for this
            // platform family.
            let small = PlatformConfig::pentium4();
            let mut pass = CachePassSim::new(
                base.logical_regs,
                vec![base.hierarchy(), {
                    let mut alt = base;
                    alt.l1 = small.l1;
                    alt.hierarchy()
                }],
            );
            recording.replay_bank(std::slice::from_mut(&mut pass));
            let streams: Vec<Arc<AnnotationStream>> =
                pass.finish_bank().into_iter().map(|(_, s)| Arc::new(s)).collect();

            let preds = [PredictorKind::Hybrid, PredictorKind::Bimodal, PredictorKind::Aliased];
            let mut bank = TimingBank::new(base.logical_regs, base.if_conversion);
            let mut expected = Vec::new();
            for (i, cfg) in variants(base).into_iter().enumerate() {
                let pred = preds[i % preds.len()];
                let stream = streams[i % streams.len()].clone();
                bank.push_lane(&cfg, pred, stream.clone());
                let mut solo =
                    CycleSim::new(cfg).with_predictor(pred).with_annotations(stream);
                recording.replay_bank(std::slice::from_mut(&mut solo));
                expected.push(solo.into_result());
            }
            recording.replay_bank(std::slice::from_mut(&mut bank));
            let got = bank.into_results();
            assert_eq!(got, expected, "{}: banked timing lanes diverged", base.name);
        }
    }

    /// The per-op consume path equals the blocked path (and therefore
    /// the annotated `CycleSim` both paths mirror).
    #[test]
    fn per_op_path_matches_blocked_path() {
        let recording = spill_heavy_recording();
        let base = PlatformConfig::alpha21264();
        let mut pass = CachePassSim::new(base.logical_regs, vec![base.hierarchy()]);
        recording.replay_bank(std::slice::from_mut(&mut pass));
        let (_, stream) = pass.finish_bank().pop().expect("one member");
        let stream = Arc::new(stream);

        let mk = || {
            let mut bank = TimingBank::new(base.logical_regs, base.if_conversion);
            for (i, cfg) in variants(base).into_iter().enumerate() {
                let pred = [PredictorKind::Hybrid, PredictorKind::Bimodal][i % 2];
                bank.push_lane(&cfg, pred, stream.clone());
            }
            bank
        };
        let mut blocked = mk();
        recording.replay_bank(std::slice::from_mut(&mut blocked));
        let mut per_op = mk();
        let program = recording.program().clone();
        for op in recording.iter() {
            per_op.consume(&op, &program);
        }
        assert_eq!(per_op.into_results(), blocked.into_results());
    }
}
