//! The register-pressure model: an LRU set of live virtual registers.
//!
//! Models a graph-coloring-free "spill at capacity" allocator: values
//! pushed out of the architected register file must be reloaded before
//! reuse. Semantically this is a move-to-front LRU list, and the original
//! implementation was literally that — a `Vec` scanned per operand. On
//! the 126-entry Itanium 2 file that scan dominated replay, so the list
//! is now an intrusive doubly-linked LRU over a slot arena with an
//! open-addressed value→slot index: `touch` and `insert` are O(1) and —
//! because LRU order is a pure function of the access sequence —
//! the eviction sequence is *identical* to the scanned version's
//! (pinned by `tests/regfile_equivalence.rs` on real program traces).

/// Sentinel for "no slot" in the linked list and the hash index.
const NIL: u32 = u32::MAX;

/// Fibonacci-multiplicative hash constant (2^64 / φ).
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Debug, Clone, Copy)]
struct Slot {
    value: u64,
    prev: u32,
    next: u32,
}

/// O(1) LRU over virtual-register numbers.
///
/// `head` is the least-recently-used value (the eviction victim), `tail`
/// the most-recently-used. The index is a linear-probe table of slot ids
/// sized ≥ 4× capacity (load factor ≤ 25%), with backward-shift deletion
/// so probes never traverse tombstones. Each entry's key is mirrored
/// into a flat `keys` array so the probe loop — the hottest path in the
/// whole register model — walks one contiguous array instead of
/// dereferencing the slot arena per step.
#[derive(Debug, Clone)]
pub struct RegFile {
    slots: Vec<Slot>,
    head: u32,
    tail: u32,
    index: Vec<u32>,
    /// `keys[pos]` is the value of the entry at `index[pos]`; garbage
    /// wherever `index[pos] == NIL`.
    keys: Vec<u64>,
    /// `index.len() == 1 << bits`; hashes take the top `bits` of v * K.
    shift: u32,
    capacity: usize,
}

impl RegFile {
    /// A file with the given number of logical registers.
    pub fn new(logical_regs: u32) -> Self {
        // A few registers are permanently claimed for addressing,
        // constants, and the stack/frame pointers.
        let capacity = (logical_regs.saturating_sub(2)).max(2) as usize;
        let table = (capacity * 4).next_power_of_two().max(8);
        Self {
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            index: vec![NIL; table],
            keys: vec![0; table],
            shift: 64 - table.trailing_zeros(),
            capacity,
        }
    }

    /// Residents the file can hold before evicting.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Touches `v`; returns `true` if it was resident (now MRU).
    pub fn touch(&mut self, v: u64) -> bool {
        if let Some(slot) = self.find(v) {
            if !crate::inject::active(crate::inject::REGFILE_TOUCH_STALE) {
                self.move_to_mru(slot);
            }
            true
        } else {
            false
        }
    }

    /// Inserts `v` as MRU, returning the evicted LRU value if the file
    /// was full (`None` if `v` was already resident or there was room).
    pub fn insert(&mut self, v: u64) -> Option<u64> {
        // One merged probe pass answers "resident?" and, on a miss,
        // leaves `pos` at the first free entry of v's chain — the exact
        // position a separate index_insert would find again.
        let mask = self.index.len() - 1;
        let mut pos = self.hash(v);
        loop {
            let slot = self.index[pos];
            if slot == NIL {
                break;
            }
            if self.keys[pos] == v {
                // Already resident: refresh, exactly like `touch`.
                if !crate::inject::active(crate::inject::REGFILE_TOUCH_STALE) {
                    self.move_to_mru(slot);
                }
                return None;
            }
            pos = (pos + 1) & mask;
        }
        if self.slots.len() < self.capacity {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot { value: v, prev: NIL, next: NIL });
            self.push_mru(slot);
            self.index[pos] = slot;
            self.keys[pos] = v;
            None
        } else {
            // Reuse the LRU slot for the incoming value. The removal's
            // backward shift can slide entries into (or past) `pos`, so
            // v's entry must be re-probed, not placed at the stale `pos`.
            let slot = if crate::inject::active(crate::inject::REGFILE_EVICT_MRU) {
                self.tail
            } else {
                self.head
            };
            let evicted = self.slots[slot as usize].value;
            self.index_remove(evicted);
            self.unlink(slot);
            self.slots[slot as usize].value = v;
            self.push_mru(slot);
            self.index_insert(v, slot);
            Some(evicted)
        }
    }

    fn hash(&self, v: u64) -> usize {
        (v.wrapping_mul(HASH_K) >> self.shift) as usize
    }

    fn find(&self, v: u64) -> Option<u32> {
        let mask = self.index.len() - 1;
        let mut pos = self.hash(v);
        loop {
            let slot = self.index[pos];
            if slot == NIL {
                return None;
            }
            if self.keys[pos] == v {
                return Some(slot);
            }
            pos = (pos + 1) & mask;
        }
    }

    fn index_insert(&mut self, v: u64, slot: u32) {
        let mask = self.index.len() - 1;
        let mut pos = self.hash(v);
        while self.index[pos] != NIL {
            pos = (pos + 1) & mask;
        }
        self.index[pos] = slot;
        self.keys[pos] = v;
    }

    /// Removes `v`'s entry with backward-shift deletion: later entries of
    /// the probe chain slide into the hole unless they already sit at or
    /// past their ideal position, so lookups never need tombstones.
    ///
    /// `v` must be present: its entry is then reachable without crossing
    /// a free slot, so probing on `keys` alone (garbage at free entries
    /// is never inspected) cannot misidentify the entry.
    fn index_remove(&mut self, v: u64) {
        let mask = self.index.len() - 1;
        let mut pos = self.hash(v);
        while self.keys[pos] != v {
            pos = (pos + 1) & mask;
        }
        let mut hole = pos;
        let mut probe = (pos + 1) & mask;
        while self.index[probe] != NIL {
            let ideal = self.hash(self.keys[probe]);
            if (probe.wrapping_sub(ideal) & mask) >= (probe.wrapping_sub(hole) & mask) {
                self.index[hole] = self.index[probe];
                self.keys[hole] = self.keys[probe];
                hole = probe;
            }
            probe = (probe + 1) & mask;
        }
        self.index[hole] = NIL;
    }

    fn unlink(&mut self, slot: u32) {
        let Slot { prev, next, .. } = self.slots[slot as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_mru(&mut self, slot: u32) {
        self.slots[slot as usize].prev = self.tail;
        self.slots[slot as usize].next = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.slots[self.tail as usize].next = slot;
        }
        self.tail = slot;
    }

    fn move_to_mru(&mut self, slot: u32) {
        if self.tail == slot {
            return;
        }
        self.unlink(slot);
        self.push_mru(slot);
    }
}

// The scanned reference implementation this LRU replaced lives in the
// conformance crate as `bioperf_conform::RefRegFile` (this crate cannot
// depend on it without a cycle). Differential coverage — adversarial
// synthetic sequences, real-trace equivalence, seeded fuzzing — lives in
// `crates/conform` and `tests/regfile_equivalence.rs`; the tests below
// only pin the basic LRU contract directly.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_semantics() {
        let mut rf = RegFile::new(6); // capacity 4
        assert_eq!(rf.capacity(), 4);
        assert_eq!(rf.insert(1), None);
        assert_eq!(rf.insert(2), None);
        assert_eq!(rf.insert(3), None);
        assert_eq!(rf.insert(4), None);
        assert!(rf.touch(1)); // 1 becomes MRU
        assert_eq!(rf.insert(5), Some(2), "2 is now LRU");
        assert!(!rf.touch(2));
        assert!(rf.touch(1));
    }

    #[test]
    fn eviction_order_at_capacity_is_strict_lru() {
        let mut rf = RegFile::new(4); // capacity 2
        assert_eq!(rf.insert(10), None);
        assert_eq!(rf.insert(20), None);
        assert_eq!(rf.insert(30), Some(10), "oldest goes first");
        assert_eq!(rf.insert(40), Some(20));
        assert_eq!(rf.insert(30), None, "already resident: refresh, no eviction");
        assert_eq!(rf.insert(50), Some(40), "30 was refreshed above 40");
        assert_eq!(rf.insert(60), Some(30));
    }

    #[test]
    fn reinserting_resident_value_refreshes_without_evicting() {
        let mut rf = RegFile::new(5); // capacity 3
        rf.insert(1);
        rf.insert(2);
        rf.insert(3);
        assert_eq!(rf.insert(2), None);
        assert_eq!(rf.len(), 3);
        assert_eq!(rf.insert(4), Some(1), "2 refreshed, 1 remains LRU");
    }
}
