//! Platform configurations (the paper's Table 7).

use bioperf_cache::{CacheConfig, Hierarchy, LatencyConfig};
use bioperf_isa::OpKind;

/// Execution latencies for non-memory operation classes, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpLatencies {
    /// Integer ALU (add/compare/logic).
    pub int_alu: u64,
    /// Conditional move / select. Cheap on most cores, but slow on the
    /// Pentium 4 (Intel's optimization manual recommended branches over
    /// `cmov` on that microarchitecture).
    pub cmov: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// FP add/sub/compare.
    pub fp_alu: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide / long-latency FP.
    pub fp_div: u64,
}

impl OpLatencies {
    /// Typical early-2000s latencies.
    pub const fn classic() -> Self {
        Self { int_alu: 1, cmov: 1, int_mul: 7, fp_alu: 4, fp_mul: 4, fp_div: 16 }
    }

    /// Pentium 4 latencies: slow conditional moves and multiplies.
    pub const fn pentium4() -> Self {
        Self { int_alu: 1, cmov: 6, int_mul: 14, fp_alu: 4, fp_mul: 6, fp_div: 23 }
    }
}

/// One evaluation platform: core shape, latencies, caches, registers.
///
/// The four presets correspond to the paper's Table 7 machines. Cache
/// geometry and L1 latencies follow the table; parameters the table omits
/// (ROB sizes, widths, misprediction penalties, L2/memory latencies for
/// the x86/IPF rows) use the machines' published microarchitecture
/// numbers, recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformConfig {
    /// Platform name as in Table 7.
    pub name: &'static str,
    /// In-order issue (Itanium 2) vs. out-of-order.
    pub in_order: bool,
    /// Front-end dispatch width (micro-ops per cycle).
    pub fetch_width: u32,
    /// Issue (execute) width per cycle.
    pub issue_width: u32,
    /// Reorder-buffer / in-flight window size.
    pub rob_size: usize,
    /// Integer L1 load-to-use latency.
    pub int_load_latency: u64,
    /// Floating-point L1 load-to-use latency.
    pub fp_load_latency: u64,
    /// Extra cycles for an L2 hit beyond the L1 probe.
    pub l2_latency: u64,
    /// Extra cycles for memory beyond the L2 probe.
    pub memory_latency: u64,
    /// Front-end refill penalty after a branch misprediction redirect.
    pub mispredict_penalty: u64,
    /// Extra latency on a spill reload beyond the L1 hit (store-to-load
    /// forwarding cost; large on the Pentium 4).
    pub spill_forward_extra: u64,
    /// Whether this platform's compiler/ISA realizes the transformed
    /// code's selects as conditional moves. True on the Alpha (the DEC
    /// compiler emits `cmov`, paper Figure 7) and the Itanium
    /// (predication); false on the PowerPC 970 (no integer conditional
    /// move) and the paper's gcc 3.3/i386-target Pentium 4 build — there
    /// a select executes as a compare-and-branch.
    pub if_conversion: bool,
    /// Architected integer registers visible to the compiler.
    pub logical_regs: u32,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Non-memory op latencies.
    pub ops: OpLatencies,
}

impl PlatformConfig {
    /// Alpha 21264: 4-wide out-of-order, 3-cycle integer L1, 64 KB 2-way
    /// L1D, 4 MB direct-mapped L2, 32 registers.
    pub fn alpha21264() -> Self {
        Self {
            name: "Alpha 21264",
            in_order: false,
            fetch_width: 4,
            issue_width: 6,
            rob_size: 80,
            int_load_latency: 3,
            fp_load_latency: 4,
            l2_latency: 8,
            memory_latency: 72,
            mispredict_penalty: 7,
            spill_forward_extra: 0,
            if_conversion: true,
            logical_regs: 32,
            l1: CacheConfig::new(64 * 1024, 2, 64),
            l2: CacheConfig::new(4 * 1024 * 1024, 1, 64),
            ops: OpLatencies::classic(),
        }
    }

    /// PowerPC G5 (970): 4-wide out-of-order, 3-cycle integer L1, 32 KB
    /// 2-way L1D, 512 KB 8-way L2, 32 registers, deeper pipeline.
    pub fn ppc_g5() -> Self {
        Self {
            name: "PowerPC G5",
            in_order: false,
            fetch_width: 4,
            issue_width: 4,
            rob_size: 100,
            int_load_latency: 3,
            fp_load_latency: 5,
            l2_latency: 11,
            memory_latency: 100,
            mispredict_penalty: 11,
            spill_forward_extra: 0,
            if_conversion: false,
            logical_regs: 32,
            l1: CacheConfig::new(32 * 1024, 2, 64),
            l2: CacheConfig::new(512 * 1024, 8, 64),
            ops: OpLatencies::classic(),
        }
    }

    /// Pentium 4: 3-wide out-of-order, 2-cycle integer L1, tiny 8 KB
    /// 4-way L1D, 512 KB 8-way L2, only 8 logical registers, very deep
    /// pipeline.
    pub fn pentium4() -> Self {
        Self {
            name: "Pentium 4",
            in_order: false,
            fetch_width: 3,
            issue_width: 3,
            rob_size: 126,
            int_load_latency: 2,
            fp_load_latency: 6,
            l2_latency: 7,
            memory_latency: 100,
            mispredict_penalty: 20,
            spill_forward_extra: 4,
            if_conversion: false,
            logical_regs: 8,
            l1: CacheConfig::new(8 * 1024, 4, 64),
            l2: CacheConfig::new(512 * 1024, 8, 64),
            ops: OpLatencies::pentium4(),
        }
    }

    /// Itanium 2: 6-wide in-order, 1-cycle integer L1, 16 KB 4-way L1D,
    /// 256 KB 8-way L2, 128 registers.
    pub fn itanium2() -> Self {
        Self {
            name: "Itanium 2",
            in_order: true,
            fetch_width: 6,
            issue_width: 6,
            rob_size: 48,
            int_load_latency: 1,
            fp_load_latency: 5,
            l2_latency: 5,
            memory_latency: 80,
            mispredict_penalty: 6,
            spill_forward_extra: 0,
            if_conversion: true,
            logical_regs: 128,
            l1: CacheConfig::new(16 * 1024, 4, 64),
            l2: CacheConfig::new(256 * 1024, 8, 64),
            ops: OpLatencies::classic(),
        }
    }

    /// The four platforms in the paper's Table 7/8 order.
    pub fn all() -> [PlatformConfig; 4] {
        [Self::alpha21264(), Self::ppc_g5(), Self::pentium4(), Self::itanium2()]
    }

    /// Builds this platform's cache hierarchy.
    pub fn hierarchy(&self) -> Hierarchy {
        Hierarchy::new(
            self.l1,
            self.l2,
            LatencyConfig { l1: self.int_load_latency, l2: self.l2_latency, memory: self.memory_latency },
        )
    }

    /// Execution latency of a non-load op kind.
    pub fn op_latency(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::IntAlu | OpKind::CondBranch | OpKind::Jump => self.ops.int_alu,
            OpKind::CondMove => self.ops.cmov,
            OpKind::IntMul => self.ops.int_mul,
            OpKind::FpAlu => self.ops.fp_alu,
            OpKind::FpMul => self.ops.fp_mul,
            OpKind::FpDiv => self.ops.fp_div,
            OpKind::IntStore | OpKind::FpStore => 1,
            OpKind::IntLoad | OpKind::FpLoad => {
                unreachable!("load latency comes from the cache hierarchy")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_platforms_match_table7_key_facts() {
        let [alpha, ppc, p4, ipf] = PlatformConfig::all();
        assert_eq!(alpha.int_load_latency, 3);
        assert_eq!(ppc.int_load_latency, 3);
        assert_eq!(p4.int_load_latency, 2);
        assert_eq!(ipf.int_load_latency, 1);
        assert_eq!(p4.logical_regs, 8);
        assert_eq!(ipf.logical_regs, 128);
        assert!(ipf.in_order);
        assert!(!alpha.in_order && !ppc.in_order && !p4.in_order);
        assert_eq!(alpha.l1.size_bytes, 64 * 1024);
        assert_eq!(ppc.l1.size_bytes, 32 * 1024);
        assert_eq!(p4.l1.size_bytes, 8 * 1024);
        assert_eq!(ipf.l1.size_bytes, 16 * 1024);
    }

    #[test]
    fn op_latencies_are_sensible() {
        let c = PlatformConfig::alpha21264();
        assert_eq!(c.op_latency(OpKind::IntAlu), 1);
        assert!(c.op_latency(OpKind::FpDiv) > c.op_latency(OpKind::FpMul));
    }

    #[test]
    #[should_panic(expected = "cache hierarchy")]
    fn load_latency_is_not_an_op_latency() {
        PlatformConfig::alpha21264().op_latency(OpKind::IntLoad);
    }

    #[test]
    fn hierarchy_uses_platform_l1_latency() {
        let mut h = PlatformConfig::pentium4().hierarchy();
        h.access(0x40, bioperf_cache::AccessKind::Load);
        let lat = h.access(0x40, bioperf_cache::AccessKind::Load);
        assert_eq!(lat, 2);
    }
}
