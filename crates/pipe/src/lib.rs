//! Trace-driven processor timing models for the four evaluation
//! platforms.
//!
//! The paper times its original and load-transformed programs on four
//! real machines (Table 7): an out-of-order Alpha 21264, an out-of-order
//! PowerPC G5, a register-scarce out-of-order Pentium 4, and an in-order
//! Itanium 2. Those machines are unobtainable, so this crate models the
//! microarchitectural mechanisms the paper's analysis rests on:
//!
//! * multi-cycle L1 **load-to-use latency** fed by a per-platform cache
//!   hierarchy ([`bioperf_cache`]),
//! * **branch resolution** through dataflow: a branch fed by a load
//!   resolves later, so its misprediction redirect comes later — the L1
//!   hit latency is effectively added to the misprediction penalty
//!   (the paper's load→branch effect),
//! * **post-misprediction exposure**: after a redirect the front end
//!   restarts, so the latency of the loads fetched next cannot hide under
//!   older work (the branch→load effect),
//! * **register pressure**: an LRU spill model inserts reload/spill
//!   traffic when more values are live than the platform has logical
//!   registers (why the 8-register Pentium 4 benefits least, Section 5),
//! * an **in-order issue** mode (why the Itanium 2 still speeds up: the
//!   transformation lengthens basic blocks and removes hard branches).
//!
//! # Example
//!
//! ```
//! use bioperf_pipe::{CycleSim, PlatformConfig};
//! use bioperf_trace::{Tape, Tracer};
//! use bioperf_isa::here;
//!
//! let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
//! let xs = vec![1u64; 256];
//! for x in &xs {
//!     let v = tape.int_load(here!("demo"), x);
//!     tape.int_op(here!("demo"), &[v]);
//! }
//! let (_, sim) = tape.finish();
//! let result = sim.into_result();
//! assert!(result.cycles > 0);
//! assert_eq!(result.instructions, 512);
//! ```

pub mod annotate;
pub mod config;
pub mod inject;
pub mod regfile;
pub mod simulator;
pub mod timing_bank;

pub use annotate::CachePassSim;
pub use config::{OpLatencies, PlatformConfig};
pub use regfile::RegFile;
pub use simulator::{CycleSim, OpTiming, SimResult};
pub use timing_bank::TimingBank;
