//! The factored sweep's cache pass: one trace decode drives a bank of
//! cache-axis configurations and records each one's miss-level
//! annotation stream.
//!
//! [`CachePassSim`] replays exactly the hierarchy-access sequence a full
//! [`CycleSim`](crate::CycleSim) would generate — the demand loads and
//! stores plus the spill stores/reloads inserted by the register-pressure
//! model — without any timing state. That sequence depends only on the
//! trace and the platform's logical register count: every sweep cell
//! shares the register file geometry, so one pass serves every timing
//! configuration (see `core::sweep`'s factored wave 2). Each access is
//! applied to every member [`Hierarchy`], and the servicing level lands
//! in that member's [`AnnotationStream`]; the timing pass later converts
//! levels back to latencies through each cell's own latency axis.

use bioperf_cache::{AccessKind, AnnotationStream, Hierarchy, HierarchyStats, MissLevelBank};
use bioperf_isa::{MicroOp, OpKind, Program};
use bioperf_trace::{
    OpBlock, TraceConsumer, REG_EVENT_DST, REG_EVENT_DST_LOAD, REG_EVENT_IDX_SHIFT,
};

use crate::regfile::RegFile;
use crate::simulator::{READY_RING, SPILL_BASE, SPILL_SLOTS};

/// Replays a trace's hierarchy-access sequence into a bank of cache
/// configurations, producing per-config stats and annotation streams.
#[derive(Debug)]
pub struct CachePassSim {
    regs: RegFile,
    ready_tag: Vec<u64>,
    ready_from_load: Vec<bool>,
    bank: MissLevelBank,
    // Blocked-path scratch: the spill plan and the merged access columns.
    spill_ci: Vec<u32>,
    spill_addr: Vec<u64>,
    spill_computed: Vec<bool>,
    acc_addrs: Vec<u64>,
    acc_loads: Vec<bool>,
    addr_log: Option<Vec<u64>>,
}

impl CachePassSim {
    /// Builds a cache pass over the given member hierarchies, using the
    /// platform's logical register count for the spill model (identical
    /// across sweep cells, so the access sequence is shared).
    pub fn new(logical_regs: u32, hierarchies: Vec<Hierarchy>) -> Self {
        Self {
            regs: RegFile::new(logical_regs),
            ready_tag: vec![u64::MAX; READY_RING],
            ready_from_load: vec![false; READY_RING],
            bank: MissLevelBank::new(hierarchies),
            spill_ci: Vec::new(),
            spill_addr: Vec::new(),
            spill_computed: Vec::new(),
            acc_addrs: Vec::new(),
            acc_loads: Vec::new(),
            addr_log: None,
        }
    }

    /// Also record the raw address sequence presented to the bank, for
    /// analytic cross-checks (the sweep's stack-distance verification
    /// profiles exactly this stream).
    pub fn with_address_log(mut self) -> Self {
        self.addr_log = Some(Vec::new());
        self
    }

    /// The logged address sequence, when [`Self::with_address_log`] was
    /// requested.
    pub fn address_log(&self) -> Option<&[u64]> {
        self.addr_log.as_deref()
    }

    /// Accesses presented to the bank so far (the annotation length).
    pub fn accesses(&self) -> usize {
        self.bank.accesses()
    }

    /// Final per-member stats and annotation streams, in construction
    /// order.
    pub fn finish_bank(self) -> Vec<(HierarchyStats, AnnotationStream)> {
        self.bank.finish()
    }

    fn bank_access(&mut self, addr: u64, kind: AccessKind) {
        if let Some(log) = &mut self.addr_log {
            log.push(addr);
        }
        self.bank.access(addr, kind);
    }
}

impl TraceConsumer for CachePassSim {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        // Mirrors `CycleSim::step`'s access order: spill traffic from
        // operand resolution first, then the op's own demand access.
        for src in op.sources() {
            let slot = (src.0 as usize) & (READY_RING - 1);
            if self.ready_tag[slot] != src.0 {
                continue; // no recorded producer
            }
            if self.regs.touch(src.0) {
                continue; // still architected: no spill traffic
            }
            let addr = SPILL_BASE + (src.0 % SPILL_SLOTS) * 8;
            if !self.ready_from_load[slot] {
                // Computed value: round-trips through the spill slot.
                self.bank_access(addr, AccessKind::Store);
            }
            self.bank_access(addr, AccessKind::Load);
            self.regs.insert(src.0);
        }
        match op.kind {
            OpKind::IntLoad | OpKind::FpLoad => {
                self.bank_access(op.addr.expect("loads carry addresses"), AccessKind::Load);
            }
            OpKind::IntStore | OpKind::FpStore => {
                self.bank_access(op.addr.expect("stores carry addresses"), AccessKind::Store);
            }
            _ => {}
        }
        if let Some(dst) = op.dst {
            let slot = (dst.0 as usize) & (READY_RING - 1);
            self.ready_tag[slot] = dst.0;
            self.ready_from_load[slot] = op.kind.is_load();
            self.regs.insert(dst.0);
        }
    }

    fn consume_block(&mut self, block: &OpBlock, _program: &Program) {
        // Spill plan over the whole block: the register-event walk of
        // `CycleSim::block_pass_regs`, keeping only what decides accesses.
        self.spill_ci.clear();
        self.spill_addr.clear();
        self.spill_computed.clear();
        let metas = block.reg_event_meta();
        let vregs = block.reg_event_vreg();
        for (e, &meta) in metas.iter().enumerate() {
            let v = vregs[e];
            let slot = (v as usize) & (READY_RING - 1);
            if meta & REG_EVENT_DST != 0 {
                self.ready_tag[slot] = v;
                self.ready_from_load[slot] = meta & REG_EVENT_DST_LOAD != 0;
                self.regs.insert(v);
                continue;
            }
            if self.ready_tag[slot] != v {
                continue;
            }
            if !self.regs.touch(v) {
                self.spill_ci.push(meta >> REG_EVENT_IDX_SHIFT);
                self.spill_addr.push(SPILL_BASE + (v % SPILL_SLOTS) * 8);
                self.spill_computed.push(!self.ready_from_load[slot]);
                self.regs.insert(v);
            }
        }

        // Merge the planned spill traffic with the pre-filtered demand
        // column into one access run, ties toward the spill stream — the
        // same interleaving as `block_pass_memory`, which itself matches
        // per-op order (an op resolves operands before executing).
        self.acc_addrs.clear();
        self.acc_loads.clear();
        let mem_idx = block.mem_idx();
        let mem_addrs = block.mem_addrs();
        let mem_loads = block.mem_loads();
        let codes = block.kind_codes();
        let mut sp = 0;
        let mut me = 0;
        loop {
            let sp_ci = self.spill_ci.get(sp).copied().unwrap_or(u32::MAX);
            let mem_ci = mem_idx.get(me).copied().unwrap_or(u32::MAX);
            if sp_ci <= mem_ci {
                if sp_ci == u32::MAX {
                    break;
                }
                if self.spill_computed[sp] {
                    self.acc_addrs.push(self.spill_addr[sp]);
                    self.acc_loads.push(false);
                }
                self.acc_addrs.push(self.spill_addr[sp]);
                self.acc_loads.push(true);
                sp += 1;
                continue;
            }
            if codes[mem_ci as usize] <= OpKind::FpStore.code() {
                self.acc_addrs.push(mem_addrs[me]);
                self.acc_loads.push(mem_loads[me]);
            }
            me += 1;
        }
        if let Some(log) = &mut self.addr_log {
            log.extend_from_slice(&self.acc_addrs);
        }
        self.bank.access_run(&self.acc_addrs, &self.acc_loads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use crate::simulator::CycleSim;
    use bioperf_isa::here;
    use bioperf_trace::{Recorder, Tape, Tracer};

    fn spill_heavy_recording() -> (Program, bioperf_trace::Recording) {
        let mut tape = Tape::new(Recorder::new());
        let xs: Vec<u64> = (0..512).map(|i| i * 3).collect();
        let mut state = 0xFEED_F00Du64;
        let mut rand_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        for r in 0..400usize {
            let temps: Vec<_> =
                (0..12).map(|i| tape.int_load(here!("t"), &xs[(r * 7 + i) % 512])).collect();
            let mut acc = tape.lit();
            for v in &temps {
                acc = tape.int_op(here!("t"), &[acc, *v]);
            }
            let sel = tape.select(here!("t"), &[acc], rand_bit());
            tape.branch(here!("t"), &[sel], rand_bit());
            let f = tape.fp_load(here!("t"), &xs[r % 512]);
            let g = tape.fp_op(here!("t"), &[f]);
            tape.fp_store(here!("t"), &xs[(r * 13) % 512], g);
        }
        let (program, rec) = tape.finish();
        let recording = rec.into_recording(program.clone());
        (program, recording)
    }

    /// The cache pass must present exactly the access sequence a live
    /// `CycleSim` presents to its hierarchy — pinned by comparing final
    /// hierarchy stats on every platform, per-op and blocked.
    #[test]
    fn cache_pass_reproduces_cyclesim_hierarchy_stats() {
        let (program, recording) = spill_heavy_recording();
        for cfg in PlatformConfig::all() {
            let mut sim = CycleSim::new(cfg.clone());
            recording.replay_bank(std::slice::from_mut(&mut sim));
            let reference = sim.into_result().cache;

            let mut blocked = CachePassSim::new(cfg.logical_regs, vec![cfg.hierarchy()]);
            recording.replay_bank(std::slice::from_mut(&mut blocked));
            let (stats, stream) = blocked.finish_bank().pop().expect("one member");
            assert_eq!(stats, reference, "{} blocked cache pass diverged", cfg.name);
            assert_eq!(
                stream.len() as u64,
                reference.l1.load_accesses + reference.l1.store_accesses,
                "{}: one annotation per demand access",
                cfg.name
            );

            let mut per_op = CachePassSim::new(cfg.logical_regs, vec![cfg.hierarchy()]);
            for op in recording.iter() {
                per_op.consume(&op, &program);
            }
            let (stats, _) = per_op.finish_bank().pop().expect("one member");
            assert_eq!(stats, reference, "{} per-op cache pass diverged", cfg.name);
        }
    }

    /// A multi-member bank must equal independent single-member passes.
    #[test]
    fn bank_members_are_independent() {
        let (_, recording) = spill_heavy_recording();
        let cfg = PlatformConfig::pentium4();
        let others = PlatformConfig::alpha21264();
        let mut bank =
            CachePassSim::new(cfg.logical_regs, vec![cfg.hierarchy(), others.hierarchy()]);
        recording.replay_bank(std::slice::from_mut(&mut bank));
        let banked = bank.finish_bank();

        for (i, member_cfg) in [&cfg, &others].into_iter().enumerate() {
            let mut solo = CachePassSim::new(cfg.logical_regs, vec![member_cfg.hierarchy()]);
            recording.replay_bank(std::slice::from_mut(&mut solo));
            let (stats, stream) = solo.finish_bank().pop().expect("one member");
            assert_eq!(stats, banked[i].0, "member {i} stats");
            assert_eq!(stream, banked[i].1, "member {i} stream");
        }
    }
}
