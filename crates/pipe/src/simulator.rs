//! The trace-driven cycle simulator.

use bioperf_branch::{DynPredictor, PredictorKind};
use bioperf_cache::{AccessKind, Hierarchy, HierarchyStats, Prefetcher};
use bioperf_isa::{MicroOp, OpKind, Program, VReg};
use bioperf_metrics::{LogHistogram, MetricSet};
use bioperf_trace::{
    OpBlock, TraceConsumer, REG_EVENT_DST, REG_EVENT_DST_LOAD, REG_EVENT_IDX_SHIFT,
    REG_EVENT_POS,
};

use crate::config::PlatformConfig;
use crate::regfile::RegFile;

/// Ring sizes; both bound the span of "active" cycles / values, which is
/// limited by the ROB size times the largest latency.
pub(crate) const ISSUE_RING: usize = 1 << 12;
pub(crate) const READY_RING: usize = 1 << 16;

/// Each issue-ring slot packs `(cycle << 4) | issued-count` into one
/// `u64` (issue widths are ≤ 8, cycles nowhere near 2⁶⁰), so a claim is
/// one load plus one store on a 32 KB ring instead of two fields on a
/// 64 KB one.
pub(crate) const ISSUE_COUNT_BITS: u32 = 4;
pub(crate) const ISSUE_COUNT_MASK: u64 = (1 << ISSUE_COUNT_BITS) - 1;

/// Two out-of-band ready-ring slots used by the blocked engine's
/// pre-resolved operand plan: reads of `ZERO_SLOT` always see cycle 0
/// (an absent or long-dead producer), writes to `SINK_SLOT` are
/// discarded (an op with no destination). Both let the operand loop run
/// without testing `Option`s.
pub(crate) const SINK_SLOT: u32 = READY_RING as u32;
pub(crate) const ZERO_SLOT: u32 = READY_RING as u32 + 1;

/// Per-op flag byte in the blocked engine's plan: two bits per source
/// position (`00` plain, `01` reload rematerialized from a load, `10`
/// reload of a computed value through a spill slot), plus the
/// branch-resolution bits.
pub(crate) const SRC_RELOAD_LOAD: u8 = 0b01;
pub(crate) const SRC_RELOAD_COMPUTED: u8 = 0b10;
pub(crate) const SPILL_MASK: u8 = 0b11_11_11;
/// The resolved branch mispredicted: redirect the front end.
pub(crate) const FLAG_REDIRECT: u8 = 1 << 7;

/// The blocked engine phases over sub-chunks of this many ops, not whole
/// blocks: the plan arrays plus one chunk's columns stay cache-resident
/// across the three passes, where a full 4096-op block would be
/// re-fetched by each pass.
pub(crate) const PHASE_CHUNK: usize = 512;

/// Per-block cursors into the [`OpBlock`] filter columns; each chunk's
/// passes consume their column prefix and leave the cursors at the next
/// chunk's first entry.
#[derive(Default, Clone, Copy)]
struct ColCursors {
    ev: usize,
    mem: usize,
    br: usize,
    sel: usize,
}

/// Where spilled values live: a small stack-like region that stays
/// L1-resident, as real spill slots do.
pub(crate) const SPILL_BASE: u64 = 0x7fff_0000_0000;
pub(crate) const SPILL_SLOTS: u64 = 512;

/// Annotated-replay state (see [`CycleSim::with_annotations`]): a shared
/// miss-level stream, the read cursor, and the platform's
/// level-to-latency table.
#[derive(Debug, Clone)]
struct AnnCursor {
    stream: std::sync::Arc<bioperf_cache::AnnotationStream>,
    pos: usize,
    /// Total access latency by 2-bit level code (L1 / L2 / memory; the
    /// fourth entry aliases L1 so indexing a raw code never bounds-checks).
    lat: [u64; 4],
}

/// Results of simulating one trace on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed trace instructions (excludes inserted spill traffic).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branches mispredicted by the platform predictor.
    pub mispredicts: u64,
    /// Spill stores inserted by the register-pressure model.
    pub spill_stores: u64,
    /// Reload loads inserted by the register-pressure model.
    pub spill_reloads: u64,
    /// Cache demand statistics.
    pub cache: HierarchyStats,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// One op's timing in the recorded timeline (see
/// [`CycleSim::with_timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// Static instruction.
    pub sid: bioperf_isa::StaticId,
    /// Operation kind.
    pub kind: OpKind,
    /// Cycle the op was dispatched by the front end.
    pub dispatch: u64,
    /// Cycle the op issued to an execution unit.
    pub issue: u64,
    /// Cycle its result became available / it resolved.
    pub complete: u64,
    /// Whether this was a branch that mispredicted.
    pub mispredicted: bool,
}

/// Trace-driven cycle-level model of one platform.
///
/// Plug it into a [`Tape`](bioperf_trace::Tape) (or feed it ops directly
/// via [`TraceConsumer`]) and read the final [`SimResult`].
#[derive(Debug, Clone)]
pub struct CycleSim {
    cfg: PlatformConfig,
    hierarchy: Hierarchy,
    /// When set, every hierarchy access instead pops one precomputed
    /// miss-level annotation — the factored sweep's timing pass.
    ann: Option<AnnCursor>,
    predictor: DynPredictor,
    fp_load_extra: u64,

    fetch_cycle: u64,
    fetched_this_cycle: u32,
    issue_ring: Vec<u64>,
    /// Ready-ring tags: the resident vreg keyed by `vreg & mask`. Split
    /// from the cycles so the blocked engine's register pass can resolve
    /// producers without touching timing state. The untouched-slot
    /// sentinel `u64::MAX` is *observable* (an aliasing `VReg(u64::MAX)`
    /// source reads as a computed value ready at cycle 0 — part of the
    /// documented ring contract the conformance reference reproduces),
    /// so the tag stores the full vreg and the from-load flag lives in
    /// its own array rather than a stolen tag bit.
    ready_tag: Vec<u64>,
    /// Whether each ready-ring slot's resident value came straight from
    /// a load (spill reloads of such values rematerialize: no store).
    ready_from_load: Vec<bool>,
    /// Ready-ring completion cycles, same keying as `ready_tag`, plus the
    /// two out-of-band `SINK_SLOT`/`ZERO_SLOT` entries.
    ready_cycle: Vec<u64>,
    /// Completion cycles of in-flight ops, oldest first: a fixed ring
    /// over `cfg.rob_size` slots (`rob_head` indexes the oldest,
    /// `rob_len` counts residents — never more than `rob_size`).
    rob: Vec<u64>,
    rob_head: usize,
    rob_len: usize,
    last_issue: u64,
    regs: RegFile,

    /// Execution latency by `OpKind::code()` for kinds whose latency is a
    /// platform constant (loads come from the hierarchy, stores and
    /// resolving branches are 1); lets the blocked engine index instead
    /// of re-matching per op.
    lat_lut: [u32; 12],
    /// Blocked-engine scratch, reused across blocks (see
    /// [`Self::consume_block`]): per-op flag bytes, pre-resolved operand
    /// slots, destination slots, completion latencies, and the in-order
    /// stream of spill-reload latencies.
    sc_flags: Vec<u8>,
    sc_src: Vec<[u32; 3]>,
    sc_dst: Vec<u32>,
    sc_lat: Vec<u32>,
    sc_spill_lat: Vec<u32>,
    /// Spill events planned by pass A, in (op, source-position) order:
    /// `ci << 1 | computed` plus the spill-slot address, consumed by pass
    /// B's access merge.
    sc_spill_ev: Vec<u32>,
    sc_spill_addr: Vec<u64>,

    max_completion: u64,
    instructions: u64,
    branches: u64,
    mispredicts: u64,
    spill_stores: u64,
    spill_reloads: u64,
    timeline: Option<Vec<OpTiming>>,
    // Event metrics accumulate into dedicated local fields — not a
    // name-keyed set — so the per-op cost when enabled is two histogram
    // bumps, not two string lookups; `take_metrics` publishes them under
    // their names.
    metrics_on: bool,
    m_op_latency: LogHistogram,
    m_issue_delay: LogHistogram,
    m_redirects: u64,
}

/// Cap on recorded timeline entries; recording is for walkthroughs and
/// debugging, not full runs.
const TIMELINE_CAP: usize = 65_536;

impl CycleSim {
    /// Creates a simulator for one platform.
    pub fn new(cfg: PlatformConfig) -> Self {
        let mut lat_lut = [1u32; 12];
        for kind in bioperf_isa::OpKind::ALL {
            if !kind.is_load() && !kind.is_store() {
                lat_lut[kind.code() as usize] = cfg.op_latency(kind) as u32;
            }
        }
        Self {
            hierarchy: cfg.hierarchy(),
            ann: None,
            predictor: DynPredictor::default(),
            fp_load_extra: cfg.fp_load_latency.saturating_sub(cfg.int_load_latency),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            issue_ring: vec![u64::MAX; ISSUE_RING],
            ready_tag: vec![u64::MAX; READY_RING],
            ready_from_load: vec![false; READY_RING],
            // Two extra slots: the write sink and the constant-zero read.
            ready_cycle: vec![0; READY_RING + 2],
            lat_lut,
            sc_flags: Vec::new(),
            sc_src: Vec::new(),
            sc_dst: Vec::new(),
            sc_lat: Vec::new(),
            sc_spill_lat: Vec::new(),
            sc_spill_ev: Vec::new(),
            sc_spill_addr: Vec::new(),
            rob: vec![0; cfg.rob_size],
            rob_head: 0,
            rob_len: 0,
            last_issue: 0,
            regs: RegFile::new(cfg.logical_regs),
            max_completion: 0,
            instructions: 0,
            branches: 0,
            mispredicts: 0,
            spill_stores: 0,
            spill_reloads: 0,
            timeline: None,
            metrics_on: false,
            m_op_latency: LogHistogram::new(),
            m_issue_delay: LogHistogram::new(),
            m_redirects: 0,
            cfg,
        }
    }

    /// Switches on event-metric collection: per-op dispatch-to-complete
    /// latency histograms in the pipeline plus the cache hierarchy's
    /// service counters. Off by default; the per-op cost is then a single
    /// predictable branch (the metrics layer's zero-cost-when-off
    /// contract).
    pub fn with_metrics(mut self) -> Self {
        self.metrics_on = true;
        self.hierarchy = self.hierarchy.with_metrics();
        self
    }

    /// Takes the collected event metrics — pipeline events under `pipe/`,
    /// cache events under `cache/` — leaving collection in its current
    /// mode. Empty when collection is off.
    pub fn take_metrics(&mut self) -> MetricSet {
        let mut pipe = MetricSet::new();
        // Names appear only once touched, matching the lazily-created
        // slots of the name-keyed path this replaced.
        if self.m_op_latency.count() > 0 {
            pipe.histogram_merge("op_latency_cycles", &self.m_op_latency);
        }
        if self.m_issue_delay.count() > 0 {
            pipe.histogram_merge("issue_delay_cycles", &self.m_issue_delay);
        }
        if self.m_redirects > 0 {
            pipe.counter_add("mispredict_redirects", self.m_redirects);
        }
        self.m_op_latency = LogHistogram::new();
        self.m_issue_delay = LogHistogram::new();
        self.m_redirects = 0;
        let mut out = MetricSet::new();
        out.merge_prefixed("pipe/", &pipe);
        out.merge_prefixed("cache/", &self.hierarchy.take_metrics());
        out
    }

    /// Swaps in a branch predictor of the given family. The default is
    /// the paper's idealized per-static-branch hybrid
    /// ([`PredictorKind::Hybrid`]); design-space sweep cells select other
    /// families per configuration.
    pub fn with_predictor(mut self, kind: PredictorKind) -> Self {
        self.predictor = DynPredictor::new(kind);
        self
    }

    /// Installs a hardware prefetcher in the cache hierarchy. The default
    /// is [`Prefetcher::None`] — the paper's baseline machines do not
    /// prefetch.
    pub fn with_prefetcher(mut self, policy: Prefetcher) -> Self {
        self.hierarchy = self.hierarchy.with_prefetcher(policy);
        self
    }

    /// Replays against a precomputed miss-level annotation stream instead
    /// of a live cache hierarchy — the factored sweep's timing pass.
    /// Every access the pipeline would present to a hierarchy (demand
    /// loads and stores plus spill traffic) pops exactly one annotation,
    /// and the level maps to this platform's cumulative hit/miss
    /// latencies. `SimResult::cache` stays zeroed in this mode: the cache
    /// pass that produced the stream owns the stats.
    pub fn with_annotations(
        mut self,
        stream: std::sync::Arc<bioperf_cache::AnnotationStream>,
    ) -> Self {
        let lat = bioperf_cache::LatencyConfig {
            l1: self.cfg.int_load_latency,
            l2: self.cfg.l2_latency,
            memory: self.cfg.memory_latency,
        };
        // An armed `factored-annotation-skew` fault starts the cursor one
        // annotation in — the off-by-one the sweep self-check must catch.
        let pos =
            bioperf_trace::inject::active(bioperf_trace::inject::ANN_SKEW) as usize;
        self.ann = Some(AnnCursor {
            stream,
            pos,
            lat: [
                lat.total(false, false),
                lat.total(true, false),
                lat.total(true, true),
                lat.total(false, false),
            ],
        });
        self
    }

    /// Annotations consumed so far (None outside annotated mode).
    pub fn annotations_consumed(&self) -> Option<usize> {
        self.ann.as_ref().map(|c| c.pos)
    }

    /// One hierarchy access — or, in annotated mode, one pop of the
    /// precomputed miss-level stream. An exhausted cursor reads the
    /// benign L1 code, so a skewed replay diverges instead of crashing.
    #[inline]
    fn mem_access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        match &mut self.ann {
            Some(c) => {
                let code = c.stream.code(c.pos);
                c.pos += 1;
                c.lat[code as usize]
            }
            None => self.hierarchy.access(addr, kind),
        }
    }

    /// Enables per-op timeline recording (capped at 65 536 ops). Use for
    /// short pedagogical traces like the Figure 3/4 walkthrough.
    pub fn with_timeline(mut self) -> Self {
        self.timeline = Some(Vec::new());
        self
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&[OpTiming]> {
        self.timeline.as_deref()
    }

    /// The platform being simulated.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Finalizes and returns the simulation result.
    pub fn into_result(self) -> SimResult {
        SimResult {
            cycles: self.max_completion.max(self.fetch_cycle),
            instructions: self.instructions,
            branches: self.branches,
            mispredicts: self.mispredicts,
            spill_stores: self.spill_stores,
            spill_reloads: self.spill_reloads,
            cache: *self.hierarchy.stats(),
        }
    }

    /// Running result snapshot (cheap; caches copied).
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.max_completion.max(self.fetch_cycle),
            instructions: self.instructions,
            branches: self.branches,
            mispredicts: self.mispredicts,
            spill_stores: self.spill_stores,
            spill_reloads: self.spill_reloads,
            cache: *self.hierarchy.stats(),
        }
    }

    /// Claims an issue slot at the first cycle ≥ `earliest` with
    /// bandwidth available.
    fn issue_at(&mut self, earliest: u64) -> u64 {
        let width = self.cfg.issue_width as u64;
        let mut c = earliest;
        loop {
            let slot = &mut self.issue_ring[(c as usize) & (ISSUE_RING - 1)];
            let packed = *slot;
            if packed >> ISSUE_COUNT_BITS != c {
                // Stale slot from a lapped cycle: reset and claim.
                *slot = (c << ISSUE_COUNT_BITS) | 1;
                return c;
            }
            if packed & ISSUE_COUNT_MASK < width {
                *slot = packed + 1;
                return c;
            }
            c += 1;
        }
    }

    fn ready_of(&self, v: VReg) -> Option<u64> {
        let slot = (v.0 as usize) & (READY_RING - 1);
        (self.ready_tag[slot] == v.0).then(|| self.ready_cycle[slot])
    }

    fn set_ready(&mut self, v: VReg, cycle: u64, from_load: bool) {
        let slot = (v.0 as usize) & (READY_RING - 1);
        self.ready_tag[slot] = v.0;
        self.ready_from_load[slot] = from_load;
        self.ready_cycle[slot] = cycle;
    }

    /// Only meaningful right after [`ready_of`] confirmed the slot is
    /// `v`'s (the flag belongs to whichever vreg owns the slot).
    fn is_from_load(&self, v: VReg) -> bool {
        self.ready_from_load[(v.0 as usize) & (READY_RING - 1)]
    }

    /// Advances the front end by one dispatch slot and returns the
    /// dispatch cycle for the next op.
    fn dispatch(&mut self) -> u64 {
        if self.fetched_this_cycle >= self.cfg.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        // ROB full: the front end stalls until the oldest op retires.
        if self.rob_len == self.cfg.rob_size {
            let head = self.rob[self.rob_head];
            self.rob_head += 1;
            if self.rob_head == self.cfg.rob_size {
                self.rob_head = 0;
            }
            self.rob_len -= 1;
            if head > self.fetch_cycle {
                self.fetch_cycle = head;
                self.fetched_this_cycle = 0;
            }
        }
        self.fetched_this_cycle += 1;
        self.fetch_cycle
    }

    /// Operand readiness, inserting a reload if the value was spilled out
    /// of the architected register file.
    fn src_ready(&mut self, src: VReg, dispatch: u64) -> u64 {
        let Some(base) = self.ready_of(src) else {
            // No recorded producer: an immediate or long-dead value.
            return 0;
        };
        if self.regs.touch(src.0) {
            return base;
        }
        // Spilled and reused: this value really generates spill code — a
        // store at its eviction and a reload here. Both are real
        // instructions consuming front-end and issue bandwidth; the
        // reload additionally pays load (+ store-forwarding) latency.
        // Values that die without a post-eviction use generate no spill
        // code: the allocator keeps dead intermediates out of the file.
        self.spill_reloads += 1;
        // One front-end slot: the reload folds into its consumer as a
        // memory operand on the register-scarce ISA where spills matter.
        self.fetched_this_cycle += 1;
        let from_load = self.is_from_load(src);
        let (addr, extra) = if from_load {
            // The value came straight from a load: the allocator
            // rematerializes it by repeating the load instead of storing
            // it to a spill slot (no store, no forwarding stall).
            (SPILL_BASE + (src.0 % SPILL_SLOTS) * 8, 0)
        } else {
            // A computed value must round-trip through a spill slot:
            // one store plus a forwarded reload.
            self.spill_stores += 1;
            let addr = SPILL_BASE + (src.0 % SPILL_SLOTS) * 8;
            self.mem_access(addr, AccessKind::Store);
            self.issue_at(dispatch);
            (addr, self.cfg.spill_forward_extra)
        };
        let start = self.issue_at(dispatch.max(base));
        let lat = self.mem_access(addr, AccessKind::Load) + extra;
        let ready = start + lat;
        self.set_ready(src, ready, from_load);
        self.regs.insert(src.0);
        ready
    }

    /// One op through the pipeline model: the reference path, used by
    /// per-op [`TraceConsumer::consume`] and by instrumented block
    /// replay. Uninstrumented block replay goes through the phased
    /// engine below, which computes identical simulation state.
    fn step(&mut self, op: &MicroOp) {
        self.instructions += 1;
        let dispatch = self.dispatch();

        let mut operands = 0u64;
        for src in op.sources() {
            operands = operands.max(self.src_ready(src, dispatch));
        }
        let mut earliest = dispatch.max(operands);
        if self.cfg.in_order {
            // Issue in program order: an op cannot issue before its elder.
            earliest = earliest.max(self.last_issue);
        }
        let start = self.issue_at(earliest);
        if self.cfg.in_order {
            self.last_issue = start;
        }

        let mut mispredicted_now = false;
        let completion = match op.kind {
            OpKind::IntLoad | OpKind::FpLoad => {
                let lat = self.mem_access(op.addr.expect("loads carry addresses"), AccessKind::Load);
                let extra = if op.kind == OpKind::FpLoad { self.fp_load_extra } else { 0 };
                start + lat + extra
            }
            OpKind::IntStore | OpKind::FpStore => {
                self.mem_access(op.addr.expect("stores carry addresses"), AccessKind::Store);
                start + 1
            }
            OpKind::CondBranch => {
                let resolve = start + 1;
                mispredicted_now = self.resolve_branch(op, resolve);
                resolve
            }
            OpKind::CondMove if !self.cfg.if_conversion => {
                // On platforms whose compiler/ISA cannot if-convert, the
                // transformed code's select is really a compare-and-branch
                // followed by a move: it predicts, can mispredict, and
                // produces its value when it resolves.
                let resolve = start + 1;
                mispredicted_now = self.resolve_branch(op, resolve);
                resolve
            }
            kind => start + self.cfg.op_latency(kind),
        };

        if let Some(tl) = self.timeline.as_mut() {
            if tl.len() < TIMELINE_CAP {
                tl.push(OpTiming {
                    sid: op.sid,
                    kind: op.kind,
                    dispatch,
                    issue: start,
                    complete: completion,
                    mispredicted: mispredicted_now,
                });
            }
        }
        if let Some(dst) = op.dst {
            self.set_ready(dst, completion, op.kind.is_load());
            self.regs.insert(dst.0);
        }
        // `dispatch` freed a slot whenever the ring was full, so this
        // push can never overflow `rob_size`.
        let mut pos = self.rob_head + self.rob_len;
        if pos >= self.cfg.rob_size {
            pos -= self.cfg.rob_size;
        }
        self.rob[pos] = completion;
        self.rob_len += 1;
        if completion > self.max_completion {
            self.max_completion = completion;
        }
        if self.metrics_on {
            self.m_op_latency.record(completion - dispatch);
            self.m_issue_delay.record(start - dispatch);
            if mispredicted_now {
                self.m_redirects += 1;
            }
        }
    }

    /// Resolves a conditional branch (or a branch-realized select):
    /// predicts, updates stats, and redirects the front end on a
    /// misprediction.
    fn resolve_branch(&mut self, op: &MicroOp, resolve: u64) -> bool {
        self.branches += 1;
        let correct = self.predictor.observe(op.sid, op.taken);
        if !correct {
            self.mispredicts += 1;
            // Redirect: the front end restarts after the branch resolves —
            // resolution delay (e.g. waiting on a load) adds directly to
            // the misprediction cost.
            if !crate::inject::active(crate::inject::DROPPED_FLUSH) {
                let redirect = resolve + self.cfg.mispredict_penalty;
                if redirect > self.fetch_cycle {
                    self.fetch_cycle = redirect;
                    self.fetched_this_cycle = 0;
                }
            }
        }
        !correct
    }

    // ---- The phased block engine -------------------------------------
    //
    // The monolithic `step` interleaves six stateful structures per op
    // (register file, ready ring, issue ring, cache hierarchy, branch
    // predictor, ROB), so the replay hot loop is dominated by
    // data-dependent branches and a working set that spans all of them.
    // But three of those structures evolve independently of simulated
    // *time*: which values spill depends only on the vreg touch
    // sequence, cache state depends only on the address sequence, and
    // predictor state depends only on the outcome sequence. The blocked
    // path therefore runs three passes over each block:
    //
    //  A. registers — resolves every source to a ready-ring slot
    //     (`ZERO_SLOT` when there is no producer), decides which
    //     sources spill-reload, writes destination tags, and emits a
    //     per-op plan (flag byte + slots);
    //  B. memory & branches — replays the exact access sequence
    //     (including the spill traffic planned by A) through the
    //     hierarchy and the predictor, emitting each op's completion
    //     latency and the redirect flags;
    //  D. timing — the serial scheduling core: dispatch, operand max
    //     over pre-resolved slots (branchless in the no-spill common
    //     case), issue-slot claim, ROB, redirects — consuming only the
    //     dense plan arrays.
    //
    // Each pass keeps one structure hot and carries one dominant
    // branch, where the monolithic step pays for all of them on every
    // op. The passes apply state updates in the same program order as
    // `step`, so the final simulator state is identical (pinned by the
    // `blocked_replay_matches_per_op_replay` test and the conformance
    // cross-checks).

    /// Pass A: register file, spill planning, and ready-ring tags.
    ///
    /// Walks the block's register-event column — one entry per *present*
    /// source or destination, in program order — so the loop never tests
    /// an `Option` slot or touches a registerless op. Planned spill
    /// traffic lands in `sc_spill_ev`/`sc_spill_addr` for pass B's
    /// access merge. The cursor is left at the next chunk's first event.
    fn block_pass_regs(&mut self, block: &OpBlock, lo: usize, hi: usize, ev: &mut usize) {
        let n = hi - lo;
        self.sc_flags.clear();
        self.sc_flags.resize(n, 0);
        self.sc_src.clear();
        self.sc_src.resize(n, [ZERO_SLOT; 3]);
        self.sc_dst.clear();
        self.sc_dst.resize(n, SINK_SLOT);
        self.sc_spill_ev.clear();
        self.sc_spill_addr.clear();
        let metas = block.reg_event_meta();
        let vregs = block.reg_event_vreg();
        // Flag bits live below the index field, so one shifted compare
        // bounds the chunk.
        let end = (hi as u32) << REG_EVENT_IDX_SHIFT;
        while *ev < metas.len() {
            let meta = metas[*ev];
            if meta >= end {
                break;
            }
            let v = vregs[*ev];
            *ev += 1;
            let ci = (meta >> REG_EVENT_IDX_SHIFT) as usize - lo;
            let slot = (v as usize) & (READY_RING - 1);
            if meta & REG_EVENT_DST != 0 {
                self.ready_tag[slot] = v;
                self.ready_from_load[slot] = meta & REG_EVENT_DST_LOAD != 0;
                self.regs.insert(v);
                self.sc_dst[ci] = slot as u32;
                continue;
            }
            if self.ready_tag[slot] != v {
                // No recorded producer: reads as cycle 0 via ZERO_SLOT.
                continue;
            }
            let pos = (meta & REG_EVENT_POS) as usize;
            self.sc_src[ci][pos] = slot as u32;
            if !self.regs.touch(v) {
                // Spilled and reused (see `src_ready` for the model).
                self.spill_reloads += 1;
                let computed = !self.ready_from_load[slot];
                if computed {
                    self.spill_stores += 1;
                    self.sc_flags[ci] |= SRC_RELOAD_COMPUTED << (2 * pos);
                } else {
                    self.sc_flags[ci] |= SRC_RELOAD_LOAD << (2 * pos);
                }
                self.sc_spill_ev.push((ci as u32) << 1 | computed as u32);
                self.sc_spill_addr.push(SPILL_BASE + (v % SPILL_SLOTS) * 8);
                // The reload rewrites the slot with the same tag and
                // flag, so only the cycle (timing pass) changes.
                self.regs.insert(v);
            }
        }
    }

    /// Pass B: cache hierarchy and branch predictor driven entirely by
    /// the filter columns; emits per-op completion latencies and the
    /// spill-reload latency stream.
    ///
    /// The hierarchy and the predictor are independent structures, so
    /// replaying all of the chunk's accesses and then all of its branch
    /// outcomes preserves each structure's exact update order even though
    /// the two streams no longer interleave.
    fn block_pass_memory(&mut self, block: &OpBlock, lo: usize, hi: usize, cur: &mut ColCursors) {
        // Latency classes: a branchless LUT fill over the kind-code
        // column (loads are overwritten below; stores and branches
        // resolve in 1, which is what the LUT holds for them).
        let codes = &block.kind_codes()[lo..hi];
        self.sc_lat.clear();
        self.sc_lat.extend(codes.iter().map(|&c| self.lat_lut[c as usize]));
        self.sc_spill_lat.clear();
        let end = hi as u32;

        // The pre-filtered demand stream merged with pass A's planned
        // spill traffic: spill slots live in the same hierarchy as
        // demand accesses, and an op resolves operands (reloads) before
        // it executes (its own access), so ties break toward the spill
        // stream. Chunks without spills pay one always-false compare per
        // access.
        let mem_idx = block.mem_idx();
        let mem_addrs = block.mem_addrs();
        let mem_loads = block.mem_loads();
        let mut sp = 0;
        loop {
            let mem_ci = if cur.mem < mem_idx.len() && mem_idx[cur.mem] < end {
                mem_idx[cur.mem] - lo as u32
            } else {
                u32::MAX
            };
            let sp_ci = if sp < self.sc_spill_ev.len() {
                self.sc_spill_ev[sp] >> 1
            } else {
                u32::MAX
            };
            if sp_ci <= mem_ci {
                if sp_ci == u32::MAX {
                    break;
                }
                let computed = self.sc_spill_ev[sp] & 1 != 0;
                let addr = self.sc_spill_addr[sp];
                sp += 1;
                let extra = if computed {
                    // Computed values round-trip through the slot: the
                    // store happens here, the forwarding stall rides on
                    // the reload latency.
                    self.mem_access(addr, AccessKind::Store);
                    self.cfg.spill_forward_extra
                } else {
                    0
                };
                let lat = self.mem_access(addr, AccessKind::Load) + extra;
                self.sc_spill_lat.push(lat as u32);
                continue;
            }
            let e = cur.mem;
            cur.mem += 1;
            let ci = mem_ci as usize;
            let code = codes[ci];
            if code > OpKind::FpStore.code() {
                // Address-carrying non-memory kind: the per-op path
                // ignores its address, so the column entry is skipped.
                continue;
            }
            let is_load = mem_loads[e];
            let kind = if is_load { AccessKind::Load } else { AccessKind::Store };
            let lat = self.mem_access(mem_addrs[e], kind)
                + (code == OpKind::FpLoad.code()) as u64 * self.fp_load_extra;
            if is_load {
                self.sc_lat[ci] = lat as u32;
            }
        }

        // The pre-filtered outcome stream. Without if-conversion,
        // selects resolve through the same predictor, so the two columns
        // merge back into program order.
        let branch_idx = block.branch_idx();
        let branch_sids = block.branch_sids();
        let branch_taken = block.branch_taken();
        if self.cfg.if_conversion {
            while cur.br < branch_idx.len() && branch_idx[cur.br] < end {
                let e = cur.br;
                cur.br += 1;
                let ci = branch_idx[e] as usize - lo;
                self.branches += 1;
                if !self.predictor.observe(branch_sids[e], branch_taken[e]) {
                    self.mispredicts += 1;
                    self.sc_flags[ci] |= FLAG_REDIRECT;
                }
                self.sc_lat[ci] = 1;
            }
            // Selects stay ALU ops here; step the cursor past the chunk.
            let select_idx = block.select_idx();
            while cur.sel < select_idx.len() && select_idx[cur.sel] < end {
                cur.sel += 1;
            }
        } else {
            let select_idx = block.select_idx();
            let select_sids = block.select_sids();
            let select_taken = block.select_taken();
            loop {
                let b = branch_idx.get(cur.br).copied().unwrap_or(u32::MAX);
                let s = select_idx.get(cur.sel).copied().unwrap_or(u32::MAX);
                let idx = b.min(s);
                if idx >= end {
                    break;
                }
                let (sid, taken) = if b < s {
                    let e = cur.br;
                    cur.br += 1;
                    (branch_sids[e], branch_taken[e])
                } else {
                    let e = cur.sel;
                    cur.sel += 1;
                    (select_sids[e], select_taken[e])
                };
                let ci = idx as usize - lo;
                self.branches += 1;
                if !self.predictor.observe(sid, taken) {
                    self.mispredicts += 1;
                    self.sc_flags[ci] |= FLAG_REDIRECT;
                }
                self.sc_lat[ci] = 1;
            }
        }
    }

    /// Pass D: the serial timing core, driven entirely by the plan
    /// arrays. `IN_ORDER` is monomorphized per platform class.
    fn block_pass_timing<const IN_ORDER: bool>(&mut self, n: usize) {
        let mut spill_idx = 0usize;
        for i in 0..n {
            self.instructions += 1;
            let dispatch = self.dispatch();
            let flags = self.sc_flags[i];
            let slots = self.sc_src[i];
            let operands = if flags & SPILL_MASK == 0 {
                // Common case: three unconditional ring reads (absent
                // sources resolve to ZERO_SLOT's constant 0).
                let a = self.ready_cycle[slots[0] as usize];
                let b = self.ready_cycle[slots[1] as usize];
                let c = self.ready_cycle[slots[2] as usize];
                a.max(b).max(c)
            } else {
                let mut operands = 0u64;
                for (j, &slot) in slots.iter().enumerate() {
                    let base = self.ready_cycle[slot as usize];
                    let code = (flags >> (2 * j)) & 0b11;
                    if code == 0 {
                        operands = operands.max(base);
                        continue;
                    }
                    // Spill reload: same bandwidth and ordering as
                    // `src_ready`, latency precomputed by pass B.
                    self.fetched_this_cycle += 1;
                    if code == SRC_RELOAD_COMPUTED {
                        self.issue_at(dispatch);
                    }
                    let start = self.issue_at(dispatch.max(base));
                    let ready = start + self.sc_spill_lat[spill_idx] as u64;
                    spill_idx += 1;
                    self.ready_cycle[slot as usize] = ready;
                    operands = operands.max(ready);
                }
                operands
            };
            let mut earliest = dispatch.max(operands);
            if IN_ORDER {
                earliest = earliest.max(self.last_issue);
            }
            let start = self.issue_at(earliest);
            if IN_ORDER {
                self.last_issue = start;
            }
            let completion = start + self.sc_lat[i] as u64;
            if flags & FLAG_REDIRECT != 0
                && !crate::inject::active(crate::inject::DROPPED_FLUSH)
            {
                let redirect = completion + self.cfg.mispredict_penalty;
                if redirect > self.fetch_cycle {
                    self.fetch_cycle = redirect;
                    self.fetched_this_cycle = 0;
                }
            }
            self.ready_cycle[self.sc_dst[i] as usize] = completion;
            // `dispatch` freed a slot whenever the ring was full, so this
            // push can never overflow `rob_size`.
            let mut pos = self.rob_head + self.rob_len;
            if pos >= self.cfg.rob_size {
                pos -= self.cfg.rob_size;
            }
            self.rob[pos] = completion;
            self.rob_len += 1;
            if completion > self.max_completion {
                self.max_completion = completion;
            }
        }
    }
}

impl TraceConsumer for CycleSim {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.step(op);
    }

    fn consume_block(&mut self, block: &OpBlock, _program: &Program) {
        // Instrumented replays keep the reference path: timelines and
        // event metrics observe per-op interleavings the phased engine
        // does not materialize.
        if self.metrics_on || self.timeline.is_some() {
            for op in block.ops() {
                self.step(op);
            }
            return;
        }
        let n = block.len();
        let mut cur = ColCursors::default();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + PHASE_CHUNK).min(n);
            self.block_pass_regs(block, lo, hi, &mut cur.ev);
            self.block_pass_memory(block, lo, hi, &mut cur);
            if self.cfg.in_order {
                self.block_pass_timing::<true>(hi - lo);
            } else {
                self.block_pass_timing::<false>(hi - lo);
            }
            lo = hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;
    use bioperf_trace::{Tape, Tracer};

    fn sim(cfg: PlatformConfig, f: impl FnOnce(&mut Tape<CycleSim>)) -> SimResult {
        let mut tape = Tape::new(CycleSim::new(cfg));
        f(&mut tape);
        let (_, sim) = tape.finish();
        sim.into_result()
    }

    /// A dependent chain of ALU ops costs ~1 cycle each; independent ops
    /// pack `issue_width` per cycle.
    #[test]
    fn dependent_chain_vs_independent_ops() {
        let n = 10_000;
        let dep = sim(PlatformConfig::alpha21264(), |t| {
            let mut v = t.lit();
            for _ in 0..n {
                v = t.int_op(here!("chain"), &[v]);
            }
        });
        let indep = sim(PlatformConfig::alpha21264(), |t| {
            let a = t.lit();
            for _ in 0..n {
                t.int_op(here!("indep"), &[a]);
            }
        });
        assert!(dep.cycles > (n as u64) * 9 / 10, "chain must serialize: {}", dep.cycles);
        assert!(
            indep.cycles < dep.cycles / 2,
            "independent ops must overlap: {} vs {}",
            indep.cycles,
            dep.cycles
        );
    }

    /// An L1-resident pointer chase costs the load-to-use latency per hop.
    #[test]
    fn load_latency_shows_on_dependent_loads() {
        let cell = 42u64;
        let n = 5_000u64;
        let alpha = sim(PlatformConfig::alpha21264(), |t| {
            let mut v = t.int_load(here!("chase"), &cell);
            for _ in 0..n {
                v = t.int_load_via(here!("chase"), &cell, v);
            }
        });
        // 3 cycles per hop on Alpha.
        assert!(alpha.cycles > n * 5 / 2, "expected ~3 cycles/hop, got {} total", alpha.cycles);

        let ipf = sim(PlatformConfig::itanium2(), |t| {
            let mut v = t.int_load(here!("chase"), &cell);
            for _ in 0..n {
                v = t.int_load_via(here!("chase"), &cell, v);
            }
        });
        assert!(ipf.cycles < alpha.cycles, "1-cycle L1 must beat 3-cycle L1");
    }

    /// Random branches get mispredicted and cost the redirect penalty.
    #[test]
    fn mispredicted_branches_dominate_random_control_flow() {
        // L1-resident working set so branch effects are not masked by
        // memory misses; LCG outcomes so the history predictor cannot
        // learn the pattern.
        let xs: Vec<u64> = (0..64).collect();
        let mut state = 0x1234_5678u64;
        let mut rand_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let predictable = sim(PlatformConfig::alpha21264(), |t| {
            for i in 0..4000usize {
                let v = t.int_load(here!("pred"), &xs[i % 64]);
                t.branch(here!("pred"), &[v], true);
            }
        });
        let random = sim(PlatformConfig::alpha21264(), |t| {
            for i in 0..4000usize {
                let v = t.int_load(here!("rand"), &xs[i % 64]);
                t.branch(here!("rand"), &[v], rand_bit());
            }
        });
        assert!(
            random.cycles > predictable.cycles * 2,
            "random {} vs predictable {}",
            random.cycles,
            predictable.cycles
        );
        assert!(random.mispredict_rate() > 0.3);
        assert!(predictable.mispredict_rate() < 0.02);
    }

    /// The paper's central mechanism: a load feeding a mispredicted
    /// branch delays its resolution, inflating the effective penalty.
    /// Hoisting the load (making the branch input ready earlier) must
    /// recover cycles even though the branch stays unpredictable.
    #[test]
    fn load_to_branch_latency_adds_to_mispredict_cost() {
        let xs: Vec<u64> = (0..4000).collect();
        // Baseline: branch condition comes straight from a fresh load.
        let tight = sim(PlatformConfig::alpha21264(), |t| {
            for (i, x) in xs.iter().enumerate() {
                let v = t.int_load(here!("tight"), x);
                let c = t.int_op(here!("tight"), &[v]);
                t.branch(here!("tight"), &[c], i % 3 == 0);
            }
        });
        // Hoisted: the load for the *next* branch issues one iteration
        // early, so the compare's input is ready when the branch arrives.
        let hoisted = sim(PlatformConfig::alpha21264(), |t| {
            let mut v = t.int_load(here!("hoist"), &xs[0]);
            for (i, _) in xs.iter().enumerate().take(xs.len() - 1) {
                let next = t.int_load(here!("hoist"), &xs[i + 1]);
                let c = t.int_op(here!("hoist"), &[v]);
                t.branch(here!("hoist"), &[c], i % 3 == 0);
                v = next;
            }
        });
        assert!(
            hoisted.cycles < tight.cycles,
            "hoisting must help: {} vs {}",
            hoisted.cycles,
            tight.cycles
        );
    }

    /// Register pressure: with only 8 logical registers, keeping many
    /// values live inserts spill traffic; with 128 it does not.
    #[test]
    fn register_pressure_spills_on_pentium4_only() {
        let work = |t: &mut Tape<CycleSim>| {
            let xs = vec![7u64; 64];
            for _ in 0..200 {
                // 16 simultaneously-live temporaries.
                let temps: Vec<_> = (0..16).map(|i| t.int_load(here!("temps"), &xs[i])).collect();
                let mut acc = t.lit();
                for v in &temps {
                    acc = t.int_op(here!("temps"), &[acc, *v]);
                }
            }
        };
        let p4 = sim(PlatformConfig::pentium4(), work);
        let ipf = sim(PlatformConfig::itanium2(), work);
        assert!(p4.spill_reloads > 0, "P4 must spill");
        assert_eq!(ipf.spill_reloads, 0, "128 registers never spill here");
    }

    /// In-order issue serializes behind a stalled elder; out-of-order
    /// does not.
    #[test]
    fn in_order_exposes_stalls_more() {
        let work = |t: &mut Tape<CycleSim>| {
            let cell = 3u64;
            for _ in 0..2000 {
                let v = t.int_load(here!("io"), &cell);
                let w = t.int_op(here!("io"), &[v]); // dependent: waits for load
                let _ = t.int_op(here!("io"), &[w]);
                // Independent work that OOO can slide under the load.
                let a = t.lit();
                for _ in 0..3 {
                    t.int_op(here!("io"), &[a]);
                }
            }
        };
        let mut ooo_cfg = PlatformConfig::alpha21264();
        ooo_cfg.int_load_latency = 3;
        let ooo = sim(ooo_cfg, work);
        let mut io_cfg = PlatformConfig::alpha21264();
        io_cfg.in_order = true;
        let io = sim(io_cfg, work);
        assert!(io.cycles >= ooo.cycles, "in-order {} vs ooo {}", io.cycles, ooo.cycles);
    }

    /// The phased block engine must leave the simulator in exactly the
    /// state the monolithic per-op path produces — including spill
    /// counters and cache stats, across odd block sizes whose edges fall
    /// mid-spill-sequence and on both in-order and out-of-order cores.
    #[test]
    fn blocked_replay_matches_per_op_replay() {
        use bioperf_trace::{Recorder, TraceConsumer};
        let mut tape = Tape::new(Recorder::new());
        let xs: Vec<u64> = (0..512).map(|i| i * 3).collect();
        let mut state = 0xDEAD_BEEFu64;
        let mut rand_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        for r in 0..400usize {
            // Enough live temporaries to force P4 spills, plus branches,
            // selects, FP traffic, and strided loads.
            let temps: Vec<_> = (0..12).map(|i| tape.int_load(here!("t"), &xs[(r * 7 + i) % 512])).collect();
            let mut acc = tape.lit();
            for v in &temps {
                acc = tape.int_op(here!("t"), &[acc, *v]);
            }
            let sel = tape.select(here!("t"), &[acc], rand_bit());
            tape.branch(here!("t"), &[sel], rand_bit());
            let f = tape.fp_load(here!("t"), &xs[r % 512]);
            let g = tape.fp_op(here!("t"), &[f]);
            tape.fp_store(here!("t"), &xs[(r * 13) % 512], g);
        }
        let (program, rec) = tape.finish();
        let recording = rec.into_recording(program.clone());
        for cfg in PlatformConfig::all() {
            let mut per_op = CycleSim::new(cfg);
            for op in recording.iter() {
                per_op.consume(&op, &program);
            }
            let reference = per_op.into_result();
            for block_ops in [1usize, 3, 64, 4096] {
                let mut blocked = CycleSim::new(cfg);
                recording.replay_bank_blocks(std::slice::from_mut(&mut blocked), block_ops);
                assert_eq!(
                    blocked.into_result(),
                    reference,
                    "{} diverged at {}-op blocks",
                    cfg.name,
                    block_ops
                );
            }
        }
    }

    /// The factored timing pass: a sim fed the cache pass's annotation
    /// stream must produce the exact cycles/branch/spill numbers of a
    /// sim owning the live hierarchy — per-op and blocked, on every
    /// platform.
    #[test]
    fn annotated_replay_matches_live_hierarchy_replay() {
        use crate::annotate::CachePassSim;
        use bioperf_trace::Recorder;
        let mut tape = Tape::new(Recorder::new());
        let xs: Vec<u64> = (0..512).map(|i| i * 5).collect();
        let mut state = 0xC0FF_EE11u64;
        let mut rand_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        for r in 0..400usize {
            let temps: Vec<_> =
                (0..12).map(|i| tape.int_load(here!("a"), &xs[(r * 11 + i) % 512])).collect();
            let mut acc = tape.lit();
            for v in &temps {
                acc = tape.int_op(here!("a"), &[acc, *v]);
            }
            let sel = tape.select(here!("a"), &[acc], rand_bit());
            tape.branch(here!("a"), &[sel], rand_bit());
            let f = tape.fp_load(here!("a"), &xs[r % 512]);
            let g = tape.fp_op(here!("a"), &[f]);
            tape.fp_store(here!("a"), &xs[(r * 3) % 512], g);
        }
        let (program, rec) = tape.finish();
        let recording = rec.into_recording(program.clone());
        for cfg in PlatformConfig::all() {
            let mut live = CycleSim::new(cfg.clone());
            recording.replay_bank(std::slice::from_mut(&mut live));
            let reference = live.into_result();

            let mut pass = CachePassSim::new(cfg.logical_regs, vec![cfg.hierarchy()]);
            recording.replay_bank(std::slice::from_mut(&mut pass));
            let (_, stream) = pass.finish_bank().pop().expect("one member");
            let stream = std::sync::Arc::new(stream);

            let mut blocked = CycleSim::new(cfg.clone()).with_annotations(stream.clone());
            recording.replay_bank(std::slice::from_mut(&mut blocked));
            assert_eq!(blocked.annotations_consumed(), Some(stream.len()), "{}", cfg.name);
            let got = blocked.into_result();
            assert_eq!(got.cycles, reference.cycles, "{} annotated cycles", cfg.name);
            assert_eq!(
                (got.instructions, got.branches, got.mispredicts, got.spill_stores, got.spill_reloads),
                (
                    reference.instructions,
                    reference.branches,
                    reference.mispredicts,
                    reference.spill_stores,
                    reference.spill_reloads
                ),
                "{} annotated counters",
                cfg.name
            );

            let mut per_op = CycleSim::new(cfg.clone()).with_annotations(stream.clone());
            for op in recording.iter() {
                per_op.consume(&op, &program);
            }
            assert_eq!(per_op.into_result().cycles, reference.cycles, "{} per-op", cfg.name);
        }
    }

    #[test]
    fn empty_trace_is_zero_cycles() {
        let r = sim(PlatformConfig::alpha21264(), |_| {});
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn event_metrics_do_not_perturb_timing() {
        let work = |t: &mut Tape<CycleSim>| {
            let cell = 9u64;
            for i in 0..2000 {
                let v = t.int_load(here!("m"), &cell);
                let c = t.int_op(here!("m"), &[v]);
                t.branch(here!("m"), &[c], i % 7 == 0);
            }
        };
        let plain = sim(PlatformConfig::alpha21264(), work);
        let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()).with_metrics());
        work(&mut tape);
        let (_, mut instrumented) = tape.finish();
        let m = instrumented.take_metrics();
        let r = instrumented.into_result();
        assert_eq!(r, plain, "metrics collection must not change the simulation");
        let lat = m.histogram("pipe/op_latency_cycles").expect("op latency histogram");
        assert_eq!(lat.count(), r.instructions);
        assert_eq!(m.counter("pipe/mispredict_redirects"), Some(r.mispredicts));
        let serviced = m.counter("cache/serviced_l1").unwrap_or(0)
            + m.counter("cache/serviced_l2").unwrap_or(0)
            + m.counter("cache/serviced_memory").unwrap_or(0);
        assert_eq!(serviced, r.cache.l1.load_accesses + r.cache.l1.store_accesses);
        // And a plain simulator yields no metrics at all.
        let mut off = CycleSim::new(PlatformConfig::alpha21264());
        assert!(off.take_metrics().is_empty());
    }

}
