//! The trace-driven cycle simulator.

use std::collections::VecDeque;

use bioperf_branch::BranchProfiler;
use bioperf_cache::{AccessKind, Hierarchy, HierarchyStats};
use bioperf_isa::{MicroOp, OpKind, Program, VReg};
use bioperf_metrics::{LogHistogram, MetricSet};
use bioperf_trace::TraceConsumer;

use crate::config::PlatformConfig;
use crate::regfile::RegFile;

/// Ring sizes; both bound the span of "active" cycles / values, which is
/// limited by the ROB size times the largest latency.
const ISSUE_RING: usize = 1 << 12;
const READY_RING: usize = 1 << 16;

/// The ready ring packs "value came straight from a load" into the top
/// bit of the stored completion cycle (cycles never approach 2⁶³), so
/// each destination costs one ring store instead of two and the replay
/// bank drags one less 64 KB array per simulator through the caches.
const FROM_LOAD_BIT: u64 = 1 << 63;
const CYCLE_MASK: u64 = FROM_LOAD_BIT - 1;

/// Where spilled values live: a small stack-like region that stays
/// L1-resident, as real spill slots do.
const SPILL_BASE: u64 = 0x7fff_0000_0000;
const SPILL_SLOTS: u64 = 512;

/// Results of simulating one trace on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed trace instructions (excludes inserted spill traffic).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branches mispredicted by the platform predictor.
    pub mispredicts: u64,
    /// Spill stores inserted by the register-pressure model.
    pub spill_stores: u64,
    /// Reload loads inserted by the register-pressure model.
    pub spill_reloads: u64,
    /// Cache demand statistics.
    pub cache: HierarchyStats,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// One op's timing in the recorded timeline (see
/// [`CycleSim::with_timeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// Static instruction.
    pub sid: bioperf_isa::StaticId,
    /// Operation kind.
    pub kind: OpKind,
    /// Cycle the op was dispatched by the front end.
    pub dispatch: u64,
    /// Cycle the op issued to an execution unit.
    pub issue: u64,
    /// Cycle its result became available / it resolved.
    pub complete: u64,
    /// Whether this was a branch that mispredicted.
    pub mispredicted: bool,
}

/// Trace-driven cycle-level model of one platform.
///
/// Plug it into a [`Tape`](bioperf_trace::Tape) (or feed it ops directly
/// via [`TraceConsumer`]) and read the final [`SimResult`].
#[derive(Debug, Clone)]
pub struct CycleSim {
    cfg: PlatformConfig,
    hierarchy: Hierarchy,
    predictor: BranchProfiler,
    fp_load_extra: u64,

    fetch_cycle: u64,
    fetched_this_cycle: u32,
    issue_ring: Vec<(u64, u32)>,
    /// `(vreg, completion-cycle | FROM_LOAD_BIT)` keyed by `vreg & mask`.
    ready_ring: Vec<(u64, u64)>,
    rob: VecDeque<u64>,
    last_issue: u64,
    regs: RegFile,

    max_completion: u64,
    instructions: u64,
    branches: u64,
    mispredicts: u64,
    spill_stores: u64,
    spill_reloads: u64,
    timeline: Option<Vec<OpTiming>>,
    // Event metrics accumulate into dedicated local fields — not a
    // name-keyed set — so the per-op cost when enabled is two histogram
    // bumps, not two string lookups; `take_metrics` publishes them under
    // their names.
    metrics_on: bool,
    m_op_latency: LogHistogram,
    m_issue_delay: LogHistogram,
    m_redirects: u64,
}

/// Cap on recorded timeline entries; recording is for walkthroughs and
/// debugging, not full runs.
const TIMELINE_CAP: usize = 65_536;

impl CycleSim {
    /// Creates a simulator for one platform.
    pub fn new(cfg: PlatformConfig) -> Self {
        Self {
            hierarchy: cfg.hierarchy(),
            predictor: BranchProfiler::new(),
            fp_load_extra: cfg.fp_load_latency.saturating_sub(cfg.int_load_latency),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            issue_ring: vec![(u64::MAX, 0); ISSUE_RING],
            ready_ring: vec![(u64::MAX, 0); READY_RING],
            rob: VecDeque::with_capacity(cfg.rob_size),
            last_issue: 0,
            regs: RegFile::new(cfg.logical_regs),
            max_completion: 0,
            instructions: 0,
            branches: 0,
            mispredicts: 0,
            spill_stores: 0,
            spill_reloads: 0,
            timeline: None,
            metrics_on: false,
            m_op_latency: LogHistogram::new(),
            m_issue_delay: LogHistogram::new(),
            m_redirects: 0,
            cfg,
        }
    }

    /// Switches on event-metric collection: per-op dispatch-to-complete
    /// latency histograms in the pipeline plus the cache hierarchy's
    /// service counters. Off by default; the per-op cost is then a single
    /// predictable branch (the metrics layer's zero-cost-when-off
    /// contract).
    pub fn with_metrics(mut self) -> Self {
        self.metrics_on = true;
        self.hierarchy = self.hierarchy.with_metrics();
        self
    }

    /// Takes the collected event metrics — pipeline events under `pipe/`,
    /// cache events under `cache/` — leaving collection in its current
    /// mode. Empty when collection is off.
    pub fn take_metrics(&mut self) -> MetricSet {
        let mut pipe = MetricSet::new();
        // Names appear only once touched, matching the lazily-created
        // slots of the name-keyed path this replaced.
        if self.m_op_latency.count() > 0 {
            pipe.histogram_merge("op_latency_cycles", &self.m_op_latency);
        }
        if self.m_issue_delay.count() > 0 {
            pipe.histogram_merge("issue_delay_cycles", &self.m_issue_delay);
        }
        if self.m_redirects > 0 {
            pipe.counter_add("mispredict_redirects", self.m_redirects);
        }
        self.m_op_latency = LogHistogram::new();
        self.m_issue_delay = LogHistogram::new();
        self.m_redirects = 0;
        let mut out = MetricSet::new();
        out.merge_prefixed("pipe/", &pipe);
        out.merge_prefixed("cache/", &self.hierarchy.take_metrics());
        out
    }

    /// Enables per-op timeline recording (capped at 65 536 ops). Use for
    /// short pedagogical traces like the Figure 3/4 walkthrough.
    pub fn with_timeline(mut self) -> Self {
        self.timeline = Some(Vec::new());
        self
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&[OpTiming]> {
        self.timeline.as_deref()
    }

    /// The platform being simulated.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Finalizes and returns the simulation result.
    pub fn into_result(self) -> SimResult {
        SimResult {
            cycles: self.max_completion.max(self.fetch_cycle),
            instructions: self.instructions,
            branches: self.branches,
            mispredicts: self.mispredicts,
            spill_stores: self.spill_stores,
            spill_reloads: self.spill_reloads,
            cache: *self.hierarchy.stats(),
        }
    }

    /// Running result snapshot (cheap; caches copied).
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.max_completion.max(self.fetch_cycle),
            instructions: self.instructions,
            branches: self.branches,
            mispredicts: self.mispredicts,
            spill_stores: self.spill_stores,
            spill_reloads: self.spill_reloads,
            cache: *self.hierarchy.stats(),
        }
    }

    /// Claims an issue slot at the first cycle ≥ `earliest` with
    /// bandwidth available.
    fn issue_at(&mut self, earliest: u64) -> u64 {
        let mut c = earliest;
        loop {
            let slot = &mut self.issue_ring[(c as usize) & (ISSUE_RING - 1)];
            if slot.0 != c {
                *slot = (c, 0);
            }
            if slot.1 < self.cfg.issue_width {
                slot.1 += 1;
                return c;
            }
            c += 1;
        }
    }

    fn ready_of(&self, v: VReg) -> Option<u64> {
        let slot = self.ready_ring[(v.0 as usize) & (READY_RING - 1)];
        (slot.0 == v.0).then_some(slot.1 & CYCLE_MASK)
    }

    fn set_ready(&mut self, v: VReg, cycle: u64, from_load: bool) {
        let packed = cycle | if from_load { FROM_LOAD_BIT } else { 0 };
        self.ready_ring[(v.0 as usize) & (READY_RING - 1)] = (v.0, packed);
    }

    /// Only meaningful right after [`ready_of`] confirmed the slot is
    /// `v`'s (the flag belongs to whichever vreg owns the slot).
    fn is_from_load(&self, v: VReg) -> bool {
        self.ready_ring[(v.0 as usize) & (READY_RING - 1)].1 & FROM_LOAD_BIT != 0
    }

    /// Advances the front end by one dispatch slot and returns the
    /// dispatch cycle for the next op.
    fn dispatch(&mut self) -> u64 {
        if self.fetched_this_cycle >= self.cfg.fetch_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        // ROB full: the front end stalls until the oldest op retires.
        if self.rob.len() >= self.cfg.rob_size {
            let head = self.rob.pop_front().expect("rob non-empty");
            if head > self.fetch_cycle {
                self.fetch_cycle = head;
                self.fetched_this_cycle = 0;
            }
        }
        self.fetched_this_cycle += 1;
        self.fetch_cycle
    }

    /// Operand readiness, inserting a reload if the value was spilled out
    /// of the architected register file.
    fn src_ready(&mut self, src: VReg, dispatch: u64) -> u64 {
        let Some(base) = self.ready_of(src) else {
            // No recorded producer: an immediate or long-dead value.
            return 0;
        };
        if self.regs.touch(src.0) {
            return base;
        }
        // Spilled and reused: this value really generates spill code — a
        // store at its eviction and a reload here. Both are real
        // instructions consuming front-end and issue bandwidth; the
        // reload additionally pays load (+ store-forwarding) latency.
        // Values that die without a post-eviction use generate no spill
        // code: the allocator keeps dead intermediates out of the file.
        self.spill_reloads += 1;
        // One front-end slot: the reload folds into its consumer as a
        // memory operand on the register-scarce ISA where spills matter.
        self.fetched_this_cycle += 1;
        let from_load = self.is_from_load(src);
        let (addr, extra) = if from_load {
            // The value came straight from a load: the allocator
            // rematerializes it by repeating the load instead of storing
            // it to a spill slot (no store, no forwarding stall).
            (SPILL_BASE + (src.0 % SPILL_SLOTS) * 8, 0)
        } else {
            // A computed value must round-trip through a spill slot:
            // one store plus a forwarded reload.
            self.spill_stores += 1;
            let addr = SPILL_BASE + (src.0 % SPILL_SLOTS) * 8;
            self.hierarchy.access(addr, AccessKind::Store);
            self.issue_at(dispatch);
            (addr, self.cfg.spill_forward_extra)
        };
        let start = self.issue_at(dispatch.max(base));
        let lat = self.hierarchy.access(addr, AccessKind::Load) + extra;
        let ready = start + lat;
        self.set_ready(src, ready, from_load);
        self.regs.insert(src.0);
        ready
    }

    /// Resolves a conditional branch (or a branch-realized select):
    /// predicts, updates stats, and redirects the front end on a
    /// misprediction.
    fn resolve_branch(&mut self, op: &MicroOp, resolve: u64) -> bool {
        self.branches += 1;
        let correct = self.predictor.observe(op.sid, op.taken);
        if !correct {
            self.mispredicts += 1;
            // Redirect: the front end restarts after the branch resolves —
            // resolution delay (e.g. waiting on a load) adds directly to
            // the misprediction cost.
            if !crate::inject::active(crate::inject::DROPPED_FLUSH) {
                let redirect = resolve + self.cfg.mispredict_penalty;
                if redirect > self.fetch_cycle {
                    self.fetch_cycle = redirect;
                    self.fetched_this_cycle = 0;
                }
            }
        }
        !correct
    }

}

impl TraceConsumer for CycleSim {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        self.instructions += 1;
        let dispatch = self.dispatch();

        let mut operands = 0u64;
        for src in op.sources() {
            operands = operands.max(self.src_ready(src, dispatch));
        }
        let mut earliest = dispatch.max(operands);
        if self.cfg.in_order {
            // Issue in program order: an op cannot issue before its elder.
            earliest = earliest.max(self.last_issue);
        }
        let start = self.issue_at(earliest);
        if self.cfg.in_order {
            self.last_issue = start;
        }

        let mut mispredicted_now = false;
        let completion = match op.kind {
            OpKind::IntLoad | OpKind::FpLoad => {
                let lat = self.hierarchy.access(op.addr.expect("loads carry addresses"), AccessKind::Load);
                let extra = if op.kind == OpKind::FpLoad { self.fp_load_extra } else { 0 };
                start + lat + extra
            }
            OpKind::IntStore | OpKind::FpStore => {
                self.hierarchy.access(op.addr.expect("stores carry addresses"), AccessKind::Store);
                start + 1
            }
            OpKind::CondBranch => {
                let resolve = start + 1;
                mispredicted_now = self.resolve_branch(op, resolve);
                resolve
            }
            OpKind::CondMove if !self.cfg.if_conversion => {
                // On platforms whose compiler/ISA cannot if-convert, the
                // transformed code's select is really a compare-and-branch
                // followed by a move: it predicts, can mispredict, and
                // produces its value when it resolves.
                let resolve = start + 1;
                mispredicted_now = self.resolve_branch(op, resolve);
                resolve
            }
            kind => start + self.cfg.op_latency(kind),
        };

        if let Some(tl) = self.timeline.as_mut() {
            if tl.len() < TIMELINE_CAP {
                tl.push(OpTiming {
                    sid: op.sid,
                    kind: op.kind,
                    dispatch,
                    issue: start,
                    complete: completion,
                    mispredicted: mispredicted_now,
                });
            }
        }
        if let Some(dst) = op.dst {
            self.set_ready(dst, completion, op.kind.is_load());
            self.regs.insert(dst.0);
        }
        self.rob.push_back(completion);
        if self.rob.len() > self.cfg.rob_size {
            self.rob.pop_front();
        }
        if completion > self.max_completion {
            self.max_completion = completion;
        }
        if self.metrics_on {
            self.m_op_latency.record(completion - dispatch);
            self.m_issue_delay.record(start - dispatch);
            if mispredicted_now {
                self.m_redirects += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioperf_isa::here;
    use bioperf_trace::{Tape, Tracer};

    fn sim(cfg: PlatformConfig, f: impl FnOnce(&mut Tape<CycleSim>)) -> SimResult {
        let mut tape = Tape::new(CycleSim::new(cfg));
        f(&mut tape);
        let (_, sim) = tape.finish();
        sim.into_result()
    }

    /// A dependent chain of ALU ops costs ~1 cycle each; independent ops
    /// pack `issue_width` per cycle.
    #[test]
    fn dependent_chain_vs_independent_ops() {
        let n = 10_000;
        let dep = sim(PlatformConfig::alpha21264(), |t| {
            let mut v = t.lit();
            for _ in 0..n {
                v = t.int_op(here!("chain"), &[v]);
            }
        });
        let indep = sim(PlatformConfig::alpha21264(), |t| {
            let a = t.lit();
            for _ in 0..n {
                t.int_op(here!("indep"), &[a]);
            }
        });
        assert!(dep.cycles > (n as u64) * 9 / 10, "chain must serialize: {}", dep.cycles);
        assert!(
            indep.cycles < dep.cycles / 2,
            "independent ops must overlap: {} vs {}",
            indep.cycles,
            dep.cycles
        );
    }

    /// An L1-resident pointer chase costs the load-to-use latency per hop.
    #[test]
    fn load_latency_shows_on_dependent_loads() {
        let cell = 42u64;
        let n = 5_000u64;
        let alpha = sim(PlatformConfig::alpha21264(), |t| {
            let mut v = t.int_load(here!("chase"), &cell);
            for _ in 0..n {
                v = t.int_load_via(here!("chase"), &cell, v);
            }
        });
        // 3 cycles per hop on Alpha.
        assert!(alpha.cycles > n * 5 / 2, "expected ~3 cycles/hop, got {} total", alpha.cycles);

        let ipf = sim(PlatformConfig::itanium2(), |t| {
            let mut v = t.int_load(here!("chase"), &cell);
            for _ in 0..n {
                v = t.int_load_via(here!("chase"), &cell, v);
            }
        });
        assert!(ipf.cycles < alpha.cycles, "1-cycle L1 must beat 3-cycle L1");
    }

    /// Random branches get mispredicted and cost the redirect penalty.
    #[test]
    fn mispredicted_branches_dominate_random_control_flow() {
        // L1-resident working set so branch effects are not masked by
        // memory misses; LCG outcomes so the history predictor cannot
        // learn the pattern.
        let xs: Vec<u64> = (0..64).collect();
        let mut state = 0x1234_5678u64;
        let mut rand_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) & 1 == 1
        };
        let predictable = sim(PlatformConfig::alpha21264(), |t| {
            for i in 0..4000usize {
                let v = t.int_load(here!("pred"), &xs[i % 64]);
                t.branch(here!("pred"), &[v], true);
            }
        });
        let random = sim(PlatformConfig::alpha21264(), |t| {
            for i in 0..4000usize {
                let v = t.int_load(here!("rand"), &xs[i % 64]);
                t.branch(here!("rand"), &[v], rand_bit());
            }
        });
        assert!(
            random.cycles > predictable.cycles * 2,
            "random {} vs predictable {}",
            random.cycles,
            predictable.cycles
        );
        assert!(random.mispredict_rate() > 0.3);
        assert!(predictable.mispredict_rate() < 0.02);
    }

    /// The paper's central mechanism: a load feeding a mispredicted
    /// branch delays its resolution, inflating the effective penalty.
    /// Hoisting the load (making the branch input ready earlier) must
    /// recover cycles even though the branch stays unpredictable.
    #[test]
    fn load_to_branch_latency_adds_to_mispredict_cost() {
        let xs: Vec<u64> = (0..4000).collect();
        // Baseline: branch condition comes straight from a fresh load.
        let tight = sim(PlatformConfig::alpha21264(), |t| {
            for (i, x) in xs.iter().enumerate() {
                let v = t.int_load(here!("tight"), x);
                let c = t.int_op(here!("tight"), &[v]);
                t.branch(here!("tight"), &[c], i % 3 == 0);
            }
        });
        // Hoisted: the load for the *next* branch issues one iteration
        // early, so the compare's input is ready when the branch arrives.
        let hoisted = sim(PlatformConfig::alpha21264(), |t| {
            let mut v = t.int_load(here!("hoist"), &xs[0]);
            for (i, _) in xs.iter().enumerate().take(xs.len() - 1) {
                let next = t.int_load(here!("hoist"), &xs[i + 1]);
                let c = t.int_op(here!("hoist"), &[v]);
                t.branch(here!("hoist"), &[c], i % 3 == 0);
                v = next;
            }
        });
        assert!(
            hoisted.cycles < tight.cycles,
            "hoisting must help: {} vs {}",
            hoisted.cycles,
            tight.cycles
        );
    }

    /// Register pressure: with only 8 logical registers, keeping many
    /// values live inserts spill traffic; with 128 it does not.
    #[test]
    fn register_pressure_spills_on_pentium4_only() {
        let work = |t: &mut Tape<CycleSim>| {
            let xs = vec![7u64; 64];
            for _ in 0..200 {
                // 16 simultaneously-live temporaries.
                let temps: Vec<_> = (0..16).map(|i| t.int_load(here!("temps"), &xs[i])).collect();
                let mut acc = t.lit();
                for v in &temps {
                    acc = t.int_op(here!("temps"), &[acc, *v]);
                }
            }
        };
        let p4 = sim(PlatformConfig::pentium4(), work);
        let ipf = sim(PlatformConfig::itanium2(), work);
        assert!(p4.spill_reloads > 0, "P4 must spill");
        assert_eq!(ipf.spill_reloads, 0, "128 registers never spill here");
    }

    /// In-order issue serializes behind a stalled elder; out-of-order
    /// does not.
    #[test]
    fn in_order_exposes_stalls_more() {
        let work = |t: &mut Tape<CycleSim>| {
            let cell = 3u64;
            for _ in 0..2000 {
                let v = t.int_load(here!("io"), &cell);
                let w = t.int_op(here!("io"), &[v]); // dependent: waits for load
                let _ = t.int_op(here!("io"), &[w]);
                // Independent work that OOO can slide under the load.
                let a = t.lit();
                for _ in 0..3 {
                    t.int_op(here!("io"), &[a]);
                }
            }
        };
        let mut ooo_cfg = PlatformConfig::alpha21264();
        ooo_cfg.int_load_latency = 3;
        let ooo = sim(ooo_cfg, work);
        let mut io_cfg = PlatformConfig::alpha21264();
        io_cfg.in_order = true;
        let io = sim(io_cfg, work);
        assert!(io.cycles >= ooo.cycles, "in-order {} vs ooo {}", io.cycles, ooo.cycles);
    }

    #[test]
    fn empty_trace_is_zero_cycles() {
        let r = sim(PlatformConfig::alpha21264(), |_| {});
        assert_eq!(r.cycles, 0);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn event_metrics_do_not_perturb_timing() {
        let work = |t: &mut Tape<CycleSim>| {
            let cell = 9u64;
            for i in 0..2000 {
                let v = t.int_load(here!("m"), &cell);
                let c = t.int_op(here!("m"), &[v]);
                t.branch(here!("m"), &[c], i % 7 == 0);
            }
        };
        let plain = sim(PlatformConfig::alpha21264(), work);
        let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()).with_metrics());
        work(&mut tape);
        let (_, mut instrumented) = tape.finish();
        let m = instrumented.take_metrics();
        let r = instrumented.into_result();
        assert_eq!(r, plain, "metrics collection must not change the simulation");
        let lat = m.histogram("pipe/op_latency_cycles").expect("op latency histogram");
        assert_eq!(lat.count(), r.instructions);
        assert_eq!(m.counter("pipe/mispredict_redirects"), Some(r.mispredicts));
        let serviced = m.counter("cache/serviced_l1").unwrap_or(0)
            + m.counter("cache/serviced_l2").unwrap_or(0)
            + m.counter("cache/serviced_memory").unwrap_or(0);
        assert_eq!(serviced, r.cache.l1.load_accesses + r.cache.l1.store_accesses);
        // And a plain simulator yields no metrics at all.
        let mut off = CycleSim::new(PlatformConfig::alpha21264());
        assert!(off.take_metrics().is_empty());
    }

}
