//! Property tests: timing-model invariants for arbitrary traces.

use bioperf_isa::here;
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{Tape, Tracer};
use proptest::prelude::*;

/// A little random-trace generator: each element is one op choice.
#[derive(Debug, Clone, Copy)]
enum TraceOp {
    Load(u16),
    Store(u16),
    Alu,
    DependentAlu,
    Branch(bool),
}

fn trace_op() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (any::<u16>()).prop_map(TraceOp::Load),
        (any::<u16>()).prop_map(TraceOp::Store),
        Just(TraceOp::Alu),
        Just(TraceOp::DependentAlu),
        any::<bool>().prop_map(TraceOp::Branch),
    ]
}

fn run_trace(cfg: PlatformConfig, ops: &[TraceOp], mem: &[u64]) -> bioperf_pipe::SimResult {
    let mut tape = Tape::new(CycleSim::new(cfg));
    let mut last = tape.lit();
    for op in ops {
        match *op {
            TraceOp::Load(a) => {
                last = tape.int_load(here!("prop"), &mem[a as usize % mem.len()]);
            }
            TraceOp::Store(a) => {
                tape.int_store(here!("prop"), &mem[a as usize % mem.len()], last);
            }
            TraceOp::Alu => {
                tape.int_op(here!("prop"), &[]);
            }
            TraceOp::DependentAlu => {
                last = tape.int_op(here!("prop"), &[last]);
            }
            TraceOp::Branch(taken) => {
                tape.branch(here!("prop"), &[last], taken);
            }
        }
    }
    let (_, sim) = tape.finish();
    sim.into_result()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cycles are bounded below by front-end bandwidth and above by a
    /// worst-case serial execution.
    #[test]
    fn cycles_are_bounded(ops in prop::collection::vec(trace_op(), 1..400)) {
        let mem = vec![0u64; 1 << 16];
        let cfg = PlatformConfig::alpha21264();
        let r = run_trace(cfg, &ops, &mem);
        let n = ops.len() as u64;
        prop_assert_eq!(r.instructions, n);
        prop_assert!(r.cycles >= n / cfg.fetch_width as u64, "faster than the front end");
        // Worst case: every op fully serialized at memory latency plus
        // every branch mispredicted.
        let worst = n * (3 + 8 + 72) + r.mispredicts * (cfg.mispredict_penalty + 4) + 64;
        prop_assert!(r.cycles <= worst, "{} > {}", r.cycles, worst);
    }

    /// Raising the L1 latency never makes a trace faster.
    #[test]
    fn slower_l1_never_helps(ops in prop::collection::vec(trace_op(), 1..300)) {
        let mem = vec![0u64; 1 << 16];
        let mut fast = PlatformConfig::alpha21264();
        fast.int_load_latency = 1;
        let mut slow = PlatformConfig::alpha21264();
        slow.int_load_latency = 5;
        let rf = run_trace(fast, &ops, &mem);
        let rs = run_trace(slow, &ops, &mem);
        prop_assert!(rs.cycles >= rf.cycles, "slow {} < fast {}", rs.cycles, rf.cycles);
    }

    /// Branch and misprediction counts are consistent.
    #[test]
    fn branch_accounting(ops in prop::collection::vec(trace_op(), 1..300)) {
        let mem = vec![0u64; 1 << 16];
        let r = run_trace(PlatformConfig::pentium4(), &ops, &mem);
        let branches = ops.iter().filter(|o| matches!(o, TraceOp::Branch(_))).count() as u64;
        prop_assert_eq!(r.branches, branches);
        prop_assert!(r.mispredicts <= r.branches);
    }

    /// IPC never exceeds the fetch width on any platform.
    #[test]
    fn ipc_respects_width(ops in prop::collection::vec(trace_op(), 16..300)) {
        let mem = vec![0u64; 1 << 16];
        for cfg in PlatformConfig::all() {
            let r = run_trace(cfg, &ops, &mem);
            prop_assert!(
                r.ipc() <= cfg.fetch_width as f64 + 1e-9,
                "{}: ipc {}",
                cfg.name,
                r.ipc()
            );
        }
    }

    /// The in-order core is never faster than the out-of-order core with
    /// the same resources.
    #[test]
    fn in_order_is_never_faster(ops in prop::collection::vec(trace_op(), 1..250)) {
        let mem = vec![0u64; 1 << 16];
        let ooo = PlatformConfig::alpha21264();
        let mut io = ooo;
        io.in_order = true;
        let r_ooo = run_trace(ooo, &ops, &mem);
        let r_io = run_trace(io, &ops, &mem);
        prop_assert!(r_io.cycles >= r_ooo.cycles, "in-order {} < ooo {}", r_io.cycles, r_ooo.cycles);
    }
}
