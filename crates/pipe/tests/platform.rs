//! Platform-behaviour tests for the timing models: each modeled
//! mechanism is exercised in isolation with a hand-built trace.

use bioperf_isa::here;
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{Tape, Tracer};

fn sim_with(cfg: PlatformConfig, f: impl FnOnce(&mut Tape<CycleSim>)) -> bioperf_pipe::SimResult {
    let mut tape = Tape::new(CycleSim::new(cfg));
    f(&mut tape);
    let (_, sim) = tape.finish();
    sim.into_result()
}

/// The ROB bounds how far the front end runs ahead: a trace of
/// long-latency loads must stall once the window fills.
#[test]
fn rob_limits_runahead() {
    let mem: Vec<u64> = vec![0; 1 << 18];
    let mut small = PlatformConfig::alpha21264();
    small.rob_size = 4;
    let mut large = PlatformConfig::alpha21264();
    large.rob_size = 512;
    let workload = |t: &mut Tape<CycleSim>| {
        // Independent misses striding a large array: big window = overlap.
        for i in 0..2000usize {
            t.int_load(here!("miss"), &mem[(i * 8) % mem.len()]);
        }
    };
    let r_small = sim_with(small, workload);
    let r_large = sim_with(large, workload);
    assert!(
        r_small.cycles > r_large.cycles * 2,
        "a 4-entry window must serialize misses: {} vs {}",
        r_small.cycles,
        r_large.cycles
    );
}

/// Fetch width bounds throughput for pure independent ALU work.
#[test]
fn fetch_width_bounds_ipc() {
    let workload = |t: &mut Tape<CycleSim>| {
        let a = t.lit();
        for _ in 0..10_000 {
            t.int_op(here!("alu"), &[a]);
        }
    };
    let mut narrow = PlatformConfig::alpha21264();
    narrow.fetch_width = 1;
    narrow.issue_width = 1;
    let r1 = sim_with(narrow, workload);
    let r4 = sim_with(PlatformConfig::alpha21264(), workload);
    assert!(r1.ipc() <= 1.0 + 1e-9);
    assert!(r4.ipc() > 3.0, "4-wide front end should stream ALU ops: {}", r4.ipc());
}

/// FP loads pay their extra latency on platforms where it differs.
#[test]
fn fp_loads_cost_more_than_int_loads() {
    let cell_i = 7u64;
    let cell_f = 7.0f64;
    // A single load-to-use: total cycles ≈ load latency + use latency.
    let int_chain = |t: &mut Tape<CycleSim>| {
        let v = t.int_load(here!("i"), &cell_i);
        let w = t.int_op(here!("i"), &[v]);
        t.int_op(here!("i"), &[w]);
    };
    let fp_chain = |t: &mut Tape<CycleSim>| {
        let v = t.fp_load(here!("f"), &cell_f);
        let w = t.int_op(here!("f"), &[v]);
        t.int_op(here!("f"), &[w]);
    };
    let mut p4 = PlatformConfig::pentium4(); // int L1 2, fp L1 6
    // Pre-warmed cache not available for a one-shot trace; use a large L1
    // miss-free proxy by keeping the latencies but removing the memory
    // levels from the picture: the first touch misses identically in both
    // runs, so the *difference* is exactly the fp extra.
    p4.l2_latency = 0;
    p4.memory_latency = 0;
    let ri = sim_with(p4, int_chain);
    let rf = sim_with(p4, fp_chain);
    assert_eq!(
        rf.cycles - ri.cycles,
        p4.fp_load_latency - p4.int_load_latency,
        "fp {} vs int {}",
        rf.cycles,
        ri.cycles
    );
}

/// Rematerialization: spilled values that came from loads cost less than
/// spilled computed values (no store traffic).
#[test]
fn load_values_rematerialize_without_stores() {
    let mem = vec![1u64; 64];
    let loads_only = |t: &mut Tape<CycleSim>| {
        for _ in 0..200 {
            // 16 live load results, reused after the register file (8) overflows.
            let vals: Vec<_> = (0..16).map(|i| t.int_load(here!("lv"), &mem[i])).collect();
            let mut acc = t.lit();
            for v in &vals {
                acc = t.int_op(here!("lv"), &[acc, *v]);
            }
        }
    };
    let computed_only = |t: &mut Tape<CycleSim>| {
        for _ in 0..200 {
            let base = t.lit();
            let vals: Vec<_> = (0..16).map(|_| t.int_op(here!("cv"), &[base])).collect();
            let mut acc = t.lit();
            for v in &vals {
                acc = t.int_op(here!("cv"), &[acc, *v]);
            }
        }
    };
    let p4 = PlatformConfig::pentium4();
    let rl = sim_with(p4, loads_only);
    let rc = sim_with(p4, computed_only);
    assert!(rl.spill_reloads > 0, "loads spill too");
    assert_eq!(rl.spill_stores, 0, "load-produced values rematerialize");
    assert!(rc.spill_stores > 0, "computed values need spill stores");
}

/// Timeline recording captures dispatch ≤ issue ≤ complete for every op.
#[test]
fn timeline_is_causally_ordered() {
    let mem = [3u64; 16];
    let mut tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()).with_timeline());
    for i in 0..100usize {
        let v = tape.int_load(here!("tl"), &mem[i % 16]);
        let c = tape.int_op(here!("tl"), &[v]);
        tape.branch(here!("tl"), &[c], i % 3 == 0);
    }
    let (_, sim) = tape.finish();
    let timeline = sim.timeline().expect("enabled");
    assert_eq!(timeline.len(), 300);
    for op in timeline {
        assert!(op.dispatch <= op.issue, "{op:?}");
        assert!(op.issue < op.complete, "{op:?}");
    }
    // Dispatch order is program order (non-decreasing).
    assert!(timeline.windows(2).all(|w| w[0].dispatch <= w[1].dispatch));
}

/// Without the timeline flag nothing is recorded (no silent overhead).
#[test]
fn timeline_absent_by_default() {
    let r = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
    let (_, sim) = r.finish();
    assert!(sim.timeline().is_none());
}

/// A deeper redirect penalty strictly slows a mispredict-heavy trace.
#[test]
fn penalty_scales_mispredict_cost() {
    let cell = 5u64;
    let workload = |t: &mut Tape<CycleSim>| {
        let mut state = 77u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = t.int_load(here!("b"), &cell);
            t.branch(here!("b"), &[v], (state >> 40) & 1 == 1);
        }
    };
    let mut shallow = PlatformConfig::alpha21264();
    shallow.mispredict_penalty = 2;
    let mut deep = PlatformConfig::alpha21264();
    deep.mispredict_penalty = 30;
    let rs = sim_with(shallow, workload);
    let rd = sim_with(deep, workload);
    assert!(rd.cycles > rs.cycles + rd.mispredicts * 20,
        "deep {} vs shallow {} with {} mispredicts", rd.cycles, rs.cycles, rd.mispredicts);
}

/// All four platforms produce self-consistent results on a mixed trace.
#[test]
fn all_platforms_run_a_mixed_trace() {
    let mem = vec![9u64; 4096];
    for cfg in PlatformConfig::all() {
        let r = sim_with(cfg, |t| {
            let mut state = 3u64;
            for i in 0..5000usize {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = t.int_load(here!("m"), &mem[i % 4096]);
                let c = t.int_op(here!("m"), &[v]);
                let s = t.select(here!("m"), &[c, v], (state >> 33) & 1 == 1);
                t.int_store(here!("m"), &mem[(i * 7) % 4096], s);
                t.branch(here!("m"), &[c], (state >> 40) & 3 == 0);
            }
        });
        assert_eq!(r.instructions, 25_000, "{}", cfg.name);
        assert!(r.cycles > 0 && r.ipc() <= cfg.fetch_width as f64, "{}", cfg.name);
        assert!(r.branches >= 5000, "{}: selects may add branches", cfg.name);
    }
}
