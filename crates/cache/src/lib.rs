//! Set-associative cache hierarchy simulator.
//!
//! Reimplements the cache model the paper simulates with ATOM (its
//! Table 3): a 64 KB 2-way L1 data cache and a 4 MB direct-mapped unified
//! L2, both with 64-byte blocks, write-back/write-allocate, backed by main
//! memory with latencies of 3 / 5 / 72 cycles. The headline result this
//! model supports is the paper's Table 2: the BioPerf programs' loads
//! almost always hit in L1, so the average memory access time is dominated
//! by the multi-cycle L1 *hit* latency.
//!
//! # Example
//!
//! ```
//! use bioperf_cache::{alpha21264_hierarchy, AccessKind};
//!
//! let mut h = alpha21264_hierarchy();
//! let lat_miss = h.access(0x1_0000, AccessKind::Load);
//! let lat_hit = h.access(0x1_0000, AccessKind::Load);
//! assert!(lat_miss > lat_hit);
//! assert_eq!(lat_hit, 3); // L1 hit latency
//! assert_eq!(h.stats().l1.load_misses, 1);
//! ```

pub mod annotation;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod inject;
pub mod prefetch;
pub mod stackdist;

pub use annotation::{AnnotationError, AnnotationStream, MissLevelBank, ANN_SCHEMA};
pub use cache::{AccessResult, Cache};
pub use config::{CacheConfig, CacheConfigError, LatencyConfig, WritePolicy, MAX_BLOCK_BYTES};
pub use hierarchy::{
    alpha21264_hierarchy, AccessKind, CacheSim, Hierarchy, HierarchyStats, LevelStats, ServicedBy,
};
pub use prefetch::{PrefetchEngine, Prefetcher};
pub use stackdist::{StackDistProfiler, MAX_TRACKED_WAYS};
