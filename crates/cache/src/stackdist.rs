//! All-associativity LRU profiling via stack distances (Hill & Smith).
//!
//! One walk of a reference stream maintains a single global LRU stack of
//! blocks. For each reuse, the number of *same-set* blocks above the
//! reused block — its per-set-count stack distance — decides hit or miss
//! for every (sets, ways) LRU geometry at once: the access hits a
//! `ways`-way cache with that set count iff the distance is `< ways`.
//! Per-set-count histograms of those distances therefore yield exact
//! hit/miss totals for the whole geometry axis from a single pass.
//!
//! The model is exact for demand-only write-allocate true-LRU caches —
//! the sweep's L1 axis with `Prefetcher::None` — and is used to
//! cross-check the banked cache pass (see `sweep_factor_self_check`) and
//! in the `stackdist_prop` property tests. Prefetchers inject non-demand
//! fills that perturb recency order, so prefetching geometries go
//! through the [`MissLevelBank`](crate::MissLevelBank) instead.

use std::collections::HashMap;

/// Stack distances at or beyond this many ways land in one saturation
/// bucket; geometry queries are answered exactly for `ways` up to this.
pub const MAX_TRACKED_WAYS: usize = 64;

const NIL: u32 = u32::MAX;

/// Single-pass all-associativity profiler over configured set counts.
#[derive(Debug)]
pub struct StackDistProfiler {
    block_shift: u32,
    set_counts: Vec<u64>,
    masks: Vec<u64>,
    // Intrusive doubly-linked LRU stack over an arena of blocks, with a
    // block -> node map (the regfile's O(1) LRU idiom, minus eviction:
    // the stack holds every block ever touched).
    prev: Vec<u32>,
    next: Vec<u32>,
    blocks: Vec<u64>,
    head: u32,
    map: HashMap<u64, u32>,
    // hist[s][d] counts reuses at distance d for set count s;
    // hist[s][MAX_TRACKED_WAYS] is the saturation bucket.
    hist: Vec<Vec<u64>>,
    cold: u64,
    accesses: u64,
}

impl StackDistProfiler {
    /// Builds a profiler for the given block size and set counts (all
    /// powers of two; duplicates allowed but wasteful).
    pub fn new(block_bytes: u64, set_counts: &[u64]) -> Self {
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        for &s in set_counts {
            assert!(s > 0 && s.is_power_of_two(), "set counts must be powers of two");
        }
        Self {
            block_shift: block_bytes.trailing_zeros(),
            set_counts: set_counts.to_vec(),
            masks: set_counts.iter().map(|&s| s - 1).collect(),
            prev: Vec::new(),
            next: Vec::new(),
            blocks: Vec::new(),
            head: NIL,
            map: HashMap::new(),
            hist: vec![vec![0; MAX_TRACKED_WAYS + 1]; set_counts.len()],
            cold: 0,
            accesses: 0,
        }
    }

    /// Presents one demand access (loads and stores are identical here:
    /// write-allocate means both establish residency the same way).
    pub fn access(&mut self, addr: u64) {
        self.accesses += 1;
        let block = addr >> self.block_shift;
        match self.map.get(&block).copied() {
            Some(node) => {
                // Count same-set blocks between the stack top and the
                // reused block, per configured set count.
                let mut counts = vec![0usize; self.masks.len()];
                let mut cur = self.head;
                while cur != node {
                    let b = self.blocks[cur as usize];
                    for (c, &mask) in counts.iter_mut().zip(&self.masks) {
                        *c += ((b ^ block) & mask == 0) as usize;
                    }
                    cur = self.next[cur as usize];
                }
                for (h, &d) in self.hist.iter_mut().zip(&counts) {
                    h[d.min(MAX_TRACKED_WAYS)] += 1;
                }
                self.move_to_head(node);
            }
            None => {
                self.cold += 1;
                let node = self.blocks.len() as u32;
                self.blocks.push(block);
                self.prev.push(NIL);
                self.next.push(self.head);
                if self.head != NIL {
                    self.prev[self.head as usize] = node;
                }
                self.head = node;
                self.map.insert(block, node);
            }
        }
    }

    fn move_to_head(&mut self, node: u32) {
        if node == self.head {
            return;
        }
        let (p, n) = (self.prev[node as usize], self.next[node as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
        self.prev[node as usize] = NIL;
        self.next[node as usize] = self.head;
        self.prev[self.head as usize] = node;
        self.head = node;
    }

    /// Total accesses presented.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cold (first-touch) misses — misses in every geometry.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// The reuse-distance histogram for one configured set count
    /// (`MAX_TRACKED_WAYS + 1` buckets, last one saturated).
    pub fn histogram(&self, set_count: u64) -> &[u64] {
        &self.hist[self.set_index(set_count)]
    }

    /// Exact hit count for a `(set_count, ways)` true-LRU geometry.
    pub fn hits(&self, set_count: u64, ways: u32) -> u64 {
        assert!(
            (ways as usize) <= MAX_TRACKED_WAYS,
            "ways {ways} beyond tracked depth {MAX_TRACKED_WAYS}"
        );
        let h = &self.hist[self.set_index(set_count)];
        h[..ways as usize].iter().sum()
    }

    /// Exact miss count (cold plus deep reuses) for a geometry.
    pub fn misses(&self, set_count: u64, ways: u32) -> u64 {
        self.accesses - self.hits(set_count, ways)
    }

    fn set_index(&self, set_count: u64) -> usize {
        self.set_counts
            .iter()
            .position(|&s| s == set_count)
            .unwrap_or_else(|| panic!("set count {set_count} was not configured"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::config::CacheConfig;

    #[test]
    fn sequential_stream_is_all_cold_misses() {
        let mut p = StackDistProfiler::new(64, &[1, 8]);
        for i in 0..100u64 {
            p.access(i * 64);
        }
        assert_eq!(p.accesses(), 100);
        assert_eq!(p.cold_misses(), 100);
        assert_eq!(p.misses(8, 2), 100);
    }

    #[test]
    fn tight_loop_hits_after_first_pass() {
        let mut p = StackDistProfiler::new(64, &[4]);
        for _pass in 0..10 {
            for i in 0..8u64 {
                p.access(i * 64); // 8 blocks over 4 sets: 2 blocks/set
            }
        }
        assert_eq!(p.cold_misses(), 8);
        // 2-way: everything after the first pass hits.
        assert_eq!(p.misses(4, 2), 8);
        // Direct-mapped: 2 same-set blocks alternate, distance 1 >= 1 way.
        assert_eq!(p.misses(4, 1), 80);
    }

    #[test]
    fn derived_misses_match_a_real_cache() {
        // A fixed pseudo-random mixed stream against the production Cache
        // for several geometries sharing one profile.
        let addrs: Vec<u64> = (0..4000u64).map(|i| (i.wrapping_mul(2654435761) % 911) * 64).collect();
        let mut p = StackDistProfiler::new(64, &[8, 16, 64]);
        for &a in &addrs {
            p.access(a);
        }
        for (sets, ways) in [(8u64, 1u32), (8, 4), (16, 2), (64, 2), (64, 8)] {
            let mut cache = Cache::new(CacheConfig::new(sets * ways as u64 * 64, ways, 64));
            let mut misses = 0u64;
            for &a in &addrs {
                if !cache.access(a, false).hit {
                    misses += 1;
                }
            }
            assert_eq!(p.misses(sets, ways), misses, "sets={sets} ways={ways}");
        }
    }

    #[test]
    fn histogram_totals_account_for_every_access() {
        let addrs: Vec<u64> = (0..2500u64).map(|i| (i * 97 % 401) * 32).collect();
        let mut p = StackDistProfiler::new(32, &[2, 32]);
        for &a in &addrs {
            p.access(a);
        }
        for &s in &[2u64, 32] {
            let total: u64 = p.histogram(s).iter().sum();
            assert_eq!(total + p.cold_misses(), p.accesses(), "set count {s}");
        }
    }
}
