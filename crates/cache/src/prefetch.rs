//! Hardware prefetching for the cache hierarchy.
//!
//! The paper's central claim is that the BioPerf programs' memory cost is
//! the L1 *hit* latency, not misses — which predicts that a prefetcher
//! (which can only remove misses) barely helps. This module implements
//! two classic schemes so that prediction can be tested:
//!
//! * [`Prefetcher::NextLine`] — on a miss to block `B`, also fetch `B+1`,
//! * [`Prefetcher::Stride`] — a per-PC-less global stride detector that
//!   confirms a stride after two repetitions and then runs ahead.

use crate::cache::Cache;

/// Prefetch policy attached to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefetcher {
    /// No prefetching.
    None,
    /// Fetch the next sequential block on every demand miss.
    NextLine,
    /// Detect a repeating stride in the demand-miss address stream and
    /// prefetch one stride ahead once confirmed.
    Stride,
}

/// Stride-detector state for [`Prefetcher::Stride`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StrideState {
    last_addr: u64,
    last_stride: i64,
    confirmed: bool,
}

/// Runtime prefetch engine: owns the policy, its state, and statistics.
#[derive(Debug, Clone)]
pub struct PrefetchEngine {
    policy: Prefetcher,
    stride: StrideState,
    block_bytes: u64,
    /// Prefetches issued.
    pub issued: u64,
    /// Prefetches that were already resident (wasted).
    pub useless: u64,
}

impl PrefetchEngine {
    /// Creates an engine for a given block size.
    pub fn new(policy: Prefetcher, block_bytes: u64) -> Self {
        Self { policy, stride: StrideState::default(), block_bytes, issued: 0, useless: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> Prefetcher {
        self.policy
    }

    /// Reacts to a demand miss at `addr`, filling `cache` with any
    /// predicted blocks.
    pub fn on_miss(&mut self, addr: u64, cache: &mut Cache) {
        match self.policy {
            Prefetcher::None => {}
            Prefetcher::NextLine => {
                self.fetch(addr.wrapping_add(self.block_bytes), cache);
            }
            Prefetcher::Stride => {
                let stride = addr as i64 - self.stride.last_addr as i64;
                if stride != 0 && stride == self.stride.last_stride {
                    self.stride.confirmed = true;
                } else if stride != 0 {
                    self.stride.confirmed = false;
                }
                if self.stride.confirmed {
                    let target = (addr as i64).wrapping_add(stride) as u64;
                    self.fetch(target, cache);
                }
                if stride != 0 {
                    self.stride.last_stride = stride;
                }
                self.stride.last_addr = addr;
            }
        }
    }

    fn fetch(&mut self, addr: u64, cache: &mut Cache) {
        self.issued += 1;
        if cache.probe(addr) {
            self.useless += 1;
        } else {
            cache.access(addr, false);
        }
    }

    /// Fraction of issued prefetches that were already resident.
    pub fn useless_fraction(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useless as f64 / self.issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn cache() -> Cache {
        Cache::new(CacheConfig::new(4096, 2, 64))
    }

    #[test]
    fn none_never_issues() {
        let mut c = cache();
        let mut p = PrefetchEngine::new(Prefetcher::None, 64);
        for i in 0..10u64 {
            p.on_miss(i * 64, &mut c);
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn next_line_eliminates_sequential_misses() {
        let mut c = cache();
        let mut p = PrefetchEngine::new(Prefetcher::NextLine, 64);
        // Touch block 0; prefetcher should pull block 1.
        assert!(!c.access(0, false).hit);
        p.on_miss(0, &mut c);
        assert!(c.probe(64), "next line prefetched");
    }

    #[test]
    fn stride_confirms_after_two_repeats() {
        let mut c = cache();
        let mut p = PrefetchEngine::new(Prefetcher::Stride, 64);
        p.on_miss(0, &mut c);
        assert_eq!(p.issued, 0, "no stride yet");
        p.on_miss(256, &mut c);
        assert_eq!(p.issued, 0, "stride seen once");
        p.on_miss(512, &mut c);
        assert_eq!(p.issued, 1, "stride confirmed");
        assert!(c.probe(768), "one stride ahead");
    }

    #[test]
    fn stride_resets_on_irregular_pattern() {
        let mut c = cache();
        let mut p = PrefetchEngine::new(Prefetcher::Stride, 64);
        p.on_miss(0, &mut c);
        p.on_miss(256, &mut c);
        p.on_miss(512, &mut c); // confirmed, prefetch 768
        p.on_miss(100_000, &mut c); // break the stride
        let issued_before = p.issued;
        p.on_miss(100_064, &mut c); // new stride seen once
        assert_eq!(p.issued, issued_before, "must reconfirm after a break");
    }

    #[test]
    fn useless_prefetches_are_counted() {
        let mut c = cache();
        c.access(64, false); // resident already
        let mut p = PrefetchEngine::new(Prefetcher::NextLine, 64);
        p.on_miss(0, &mut c);
        assert_eq!(p.issued, 1);
        assert_eq!(p.useless, 1);
        assert_eq!(p.useless_fraction(), 1.0);
    }
}
