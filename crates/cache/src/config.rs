//! Cache and latency configuration.

use std::fmt;

/// Largest supported cache line. Lines beyond 4 KB exceed anything the
/// modeled machines (or the design-space sweep) can mean: a "cache" with
/// page-sized lines is a different structure, and the address
/// normalization layer's region staggering assumes sub-page lines.
pub const MAX_BLOCK_BYTES: u64 = 4096;

/// A typed rejection of a cache geometry.
///
/// Design-space sweeps enumerate geometries mechanically, so degenerate
/// points (zero ways, page-sized lines, ragged capacities) are expected
/// inputs, not programming errors: [`CacheConfig::try_new`] returns this
/// error and the sweep reports the cell as *skipped* with the reason,
/// instead of a worker panicking mid-wave. [`CacheConfig::new`] keeps
/// its panicking contract for hand-written configurations by panicking
/// with the same messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Size, ways, or block bytes was zero.
    ZeroGeometry {
        /// Total capacity in bytes.
        size_bytes: u64,
        /// Associativity.
        ways: u32,
        /// Line size in bytes.
        block_bytes: u64,
    },
    /// The block size is not a power of two.
    BlockNotPowerOfTwo {
        /// The rejected line size.
        block_bytes: u64,
    },
    /// The block size exceeds [`MAX_BLOCK_BYTES`].
    BlockTooLarge {
        /// The rejected line size.
        block_bytes: u64,
    },
    /// The capacity is not a whole number of sets (`size` not divisible
    /// by `ways * block_bytes`).
    RaggedCapacity {
        /// Total capacity in bytes.
        size_bytes: u64,
        /// Associativity.
        ways: u32,
        /// Line size in bytes.
        block_bytes: u64,
    },
    /// The set count is not a power of two where one is required (the
    /// sweep requires it at L2, whose direct-mapped presets and the
    /// normalization layer's 4 MB index staggering assume pow2 indexing).
    SetsNotPowerOfTwo {
        /// The offending set count.
        sets: u64,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::ZeroGeometry { size_bytes, ways, block_bytes } => write!(
                f,
                "zero-sized cache ({size_bytes} B, {ways} ways, {block_bytes} B blocks)"
            ),
            CacheConfigError::BlockNotPowerOfTwo { block_bytes } => {
                write!(f, "block size must be a power of two (got {block_bytes} B)")
            }
            CacheConfigError::BlockTooLarge { block_bytes } => write!(
                f,
                "block size must be at most {MAX_BLOCK_BYTES} B (got {block_bytes} B)"
            ),
            CacheConfigError::RaggedCapacity { size_bytes, ways, block_bytes } => write!(
                f,
                "capacity must be a whole number of sets \
                 ({size_bytes} B is not a multiple of {ways} ways x {block_bytes} B blocks)"
            ),
            CacheConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "set count must be a power of two here (got {sets} sets)")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Write handling policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write back with write allocate (the paper's Table 3 policy).
    WriteBackAllocate,
    /// Write through without allocation (stores never fill the cache).
    WriteThroughNoAllocate,
}

/// Geometry and policy of a single cache.
///
/// # Example
///
/// ```
/// use bioperf_cache::CacheConfig;
///
/// let l1 = CacheConfig::new(64 * 1024, 2, 64);
/// assert_eq!(l1.num_sets(), 512);
/// assert_eq!(l1.to_string(), "64 KB 2-way, 64 B blocks");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity; `1` means direct-mapped.
    pub ways: u32,
    /// Block (line) size in bytes; must be a power of two.
    pub block_bytes: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Creates a write-back/write-allocate configuration.
    ///
    /// The set count need not be a power of two (design-space sweeps may
    /// use odd geometries); non-power-of-two set counts index through
    /// the general divide/modulo path instead of shift+mask.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid: zero sizes, non-power-of-two
    /// block size, or a capacity not divisible by `ways * block_bytes`.
    pub fn new(size_bytes: u64, ways: u32, block_bytes: u64) -> Self {
        match Self::try_new(size_bytes, ways, block_bytes) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a write-back/write-allocate configuration, rejecting
    /// degenerate geometries with a typed [`CacheConfigError`] instead
    /// of panicking — the entry point for mechanically enumerated
    /// design-space sweep points.
    pub fn try_new(size_bytes: u64, ways: u32, block_bytes: u64) -> Result<Self, CacheConfigError> {
        let cfg =
            Self { size_bytes, ways, block_bytes, write_policy: WritePolicy::WriteBackAllocate };
        cfg.validate_checked()?;
        Ok(cfg)
    }

    /// Sets the write policy.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.block_bytes)
    }

    fn validate_checked(&self) -> Result<(), CacheConfigError> {
        if self.size_bytes == 0 || self.ways == 0 || self.block_bytes == 0 {
            return Err(CacheConfigError::ZeroGeometry {
                size_bytes: self.size_bytes,
                ways: self.ways,
                block_bytes: self.block_bytes,
            });
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(CacheConfigError::BlockNotPowerOfTwo { block_bytes: self.block_bytes });
        }
        if self.block_bytes > MAX_BLOCK_BYTES {
            return Err(CacheConfigError::BlockTooLarge { block_bytes: self.block_bytes });
        }
        if !self.size_bytes.is_multiple_of(self.ways as u64 * self.block_bytes) {
            return Err(CacheConfigError::RaggedCapacity {
                size_bytes: self.size_bytes,
                ways: self.ways,
                block_bytes: self.block_bytes,
            });
        }
        // Any whole number of sets is simulatable: power-of-two set
        // counts (every shipped platform) take the shift+mask index
        // path, anything else the general divide/modulo path — see
        // `Cache::monomorphized_ways`.
        Ok(())
    }

    /// Requires a power-of-two set count, for the callers (the sweep's
    /// L2 axis) whose indexing contract assumes it.
    pub fn require_pow2_sets(&self) -> Result<(), CacheConfigError> {
        let sets = self.num_sets();
        if sets.is_power_of_two() {
            Ok(())
        } else {
            Err(CacheConfigError::SetsNotPowerOfTwo { sets })
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = self.size_bytes;
        if size >= 1024 * 1024 && size.is_multiple_of(1024 * 1024) {
            write!(f, "{} MB ", size / (1024 * 1024))?;
        } else {
            write!(f, "{} KB ", size / 1024)?;
        }
        if self.ways == 1 {
            write!(f, "direct-mapped, {} B blocks", self.block_bytes)
        } else {
            write!(f, "{}-way, {} B blocks", self.ways, self.block_bytes)
        }
    }
}

/// Access latencies of a two-level hierarchy plus memory, in cycles.
///
/// The paper's Section 2.1 uses L1 = 3, L2 = 5, memory = 72 for its AMAT
/// computation, which [`LatencyConfig::alpha21264`] reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyConfig {
    /// L1 hit (load-to-use) latency.
    pub l1: u64,
    /// Additional latency of an L2 hit beyond the L1 probe.
    pub l2: u64,
    /// Additional latency of a memory access beyond the L2 probe.
    pub memory: u64,
}

impl LatencyConfig {
    /// The paper's Alpha 21264 reference latencies (Section 2.1).
    pub const fn alpha21264() -> Self {
        Self { l1: 3, l2: 5, memory: 72 }
    }

    /// Total latency of an access serviced at the given depth.
    pub fn total(&self, l1_miss: bool, l2_miss: bool) -> u64 {
        let mut lat = self.l1;
        if l1_miss {
            lat += self.l2;
            if l2_miss {
                lat += self.memory;
            }
        }
        lat
    }

    /// The paper's AMAT formula: `l1 + m1*(l2 + m2*mem)` for local miss
    /// ratios `m1` (L1) and `m2` (L2).
    pub fn amat(&self, m1: f64, m2: f64) -> f64 {
        self.l1 as f64 + m1 * (self.l2 as f64 + m2 * self.memory as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_l1_geometry() {
        let cfg = CacheConfig::new(64 * 1024, 2, 64);
        assert_eq!(cfg.num_sets(), 512);
    }

    #[test]
    fn alpha_l2_geometry() {
        let cfg = CacheConfig::new(4 * 1024 * 1024, 1, 64);
        assert_eq!(cfg.num_sets(), 65536);
        assert_eq!(cfg.to_string(), "4 MB direct-mapped, 64 B blocks");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_rejected() {
        CacheConfig::new(1024, 2, 48);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_capacity_rejected() {
        CacheConfig::new(1000, 2, 64);
    }

    #[test]
    fn non_pow2_set_counts_are_valid_geometries() {
        // 3 sets x 2 ways x 64 B: a legal sweep point; it indexes through
        // the general path rather than shift+mask.
        let cfg = CacheConfig::new(3 * 2 * 64, 2, 64);
        assert_eq!(cfg.num_sets(), 3);
    }

    #[test]
    fn paper_amat_formula_matches_blast_example() {
        // Section 2.1: blast AMAT = 3 + 1.78% * (5 + 4.05% * 72) = 3.14.
        let lat = LatencyConfig::alpha21264();
        let (m1, m2) = (0.0178, 0.0405);
        let amat = lat.amat(m1, m2);
        #[allow(clippy::approx_constant)] // 3.14 is the paper's AMAT figure, not pi
        let expected = 3.14f64;
        assert!((amat - expected).abs() < 0.01, "got {amat}");
    }

    #[test]
    fn total_latency_by_depth() {
        let lat = LatencyConfig::alpha21264();
        assert_eq!(lat.total(false, false), 3);
        assert_eq!(lat.total(true, false), 8);
        assert_eq!(lat.total(true, true), 80);
    }
}
