//! A single set-associative cache with true-LRU replacement.

use crate::config::{CacheConfig, WritePolicy};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Address of a dirty block evicted by this access's fill, if any.
    /// The owner (the hierarchy) forwards it to the next level.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// A single level of cache: set-associative, true-LRU, with write-back or
/// write-through policy per its [`CacheConfig`].
///
/// # Example
///
/// ```
/// use bioperf_cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.access(0x40, false).hit);
/// assert!(c.access(0x40, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        Self {
            config,
            lines: vec![Line::default(); (sets * config.ways as u64) as usize],
            set_shift: config.block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            clock: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Splits an address into (set index, tag).
    fn index(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.set_shift;
        ((block & self.set_mask) as usize, block >> self.set_mask.count_ones())
    }

    /// Accesses `addr`; `is_store` selects the write path. Returns whether
    /// it hit and any dirty block evicted by the fill.
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessResult {
        self.clock += 1;
        let (set, tag) = self.index(addr);
        let set_bits = self.set_mask.count_ones();
        let set_shift = self.set_shift;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            if !crate::inject::active(crate::inject::LRU_TOUCH) {
                line.last_use = self.clock;
            }
            if is_store {
                match self.config.write_policy {
                    WritePolicy::WriteBackAllocate => line.dirty = true,
                    WritePolicy::WriteThroughNoAllocate => {}
                }
            }
            return AccessResult { hit: true, writeback: None };
        }

        // Miss. Write-through/no-allocate stores do not fill.
        if is_store && self.config.write_policy == WritePolicy::WriteThroughNoAllocate {
            return AccessResult { hit: false, writeback: None };
        }

        // Fill: choose an invalid way, else the LRU way.
        let victim_idx = match set_lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let (i, _) = set_lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .expect("non-empty set");
                i
            }
        };
        let victim = set_lines[victim_idx];
        let writeback = (victim.valid && victim.dirty)
            .then(|| ((victim.tag << set_bits) | set as u64) << set_shift);
        set_lines[victim_idx] = Line {
            tag,
            valid: true,
            dirty: is_store
                && self.config.write_policy == WritePolicy::WriteBackAllocate
                && !crate::inject::active(crate::inject::DIRTY_WRITEBACK),
            last_use: self.clock,
        };
        AccessResult { hit: false, writeback }
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (keeps geometry).
    pub fn clear(&mut self) {
        self.lines.fill(Line::default());
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B blocks = 256 B.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same block");
        assert!(!c.access(64, false).hit, "next block");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks whose block-address has bit 6 clear: 0x000, 0x080, 0x100...
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000 so 0x080 is LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn writeback_emitted_for_dirty_victim() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let r = c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn clean_victim_produces_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        let r = c.access(0x100, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_through_stores_do_not_allocate() {
        let mut c = Cache::new(
            CacheConfig::new(256, 2, 64).with_write_policy(WritePolicy::WriteThroughNoAllocate),
        );
        assert!(!c.access(0x000, true).hit);
        assert!(!c.probe(0x000), "store miss must not fill");
        c.access(0x000, false);
        assert!(c.access(0x000, true).hit, "store hit allowed");
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets x 1 way.
        let mut c = Cache::new(CacheConfig::new(256, 1, 64));
        c.access(0x000, false);
        c.access(0x100, false); // same set (4 sets of 64B: set = block % 4)
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn clear_invalidates() {
        let mut c = tiny();
        c.access(0x000, false);
        c.clear();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn distinct_tags_same_set_coexist_up_to_assoc() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        assert!(c.probe(0x000) && c.probe(0x080));
    }
}
