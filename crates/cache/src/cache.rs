//! A single set-associative cache with true-LRU replacement.

use crate::config::{CacheConfig, WritePolicy};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Address of a dirty block evicted by this access's fill, if any.
    /// The owner (the hierarchy) forwards it to the next level.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Compile-time specialization of the per-access loops by geometry.
///
/// The four platform geometries use 1/2/4/8 ways over power-of-two set
/// counts, so those get dedicated monomorphized instantiations whose
/// tag-match and LRU-victim loops have fixed trip counts (`access_set`
/// over `&mut [Line; WAYS]` — the optimizer fully unrolls them) and
/// whose set indexing is a shift+mask. Any other associativity — or a
/// non-power-of-two set count, where masking is wrong — takes the
/// dynamic path, which runs the very same body with a runtime trip
/// count and divide/modulo indexing. Both paths share one
/// implementation, so results are identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaysDispatch {
    W1,
    W2,
    W4,
    W8,
    Dyn,
}

/// A single level of cache: set-associative, true-LRU, with write-back or
/// write-through policy per its [`CacheConfig`].
///
/// # Example
///
/// ```
/// use bioperf_cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.access(0x40, false).hit);
/// assert!(c.access(0x40, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    /// Valid only when `sets` is a power of two (the mono dispatch).
    set_mask: u64,
    /// Set count, for the general divide/modulo index path and victim
    /// address reconstruction.
    sets: u64,
    dispatch: WaysDispatch,
    clock: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        Self {
            // Shift+mask indexing is only correct for power-of-two set
            // counts; odd sweep geometries fall back to the general
            // divide/modulo dispatch whatever their associativity.
            dispatch: match config.ways {
                _ if !sets.is_power_of_two() => WaysDispatch::Dyn,
                1 => WaysDispatch::W1,
                2 => WaysDispatch::W2,
                4 => WaysDispatch::W4,
                8 => WaysDispatch::W8,
                _ => WaysDispatch::Dyn,
            },
            config,
            lines: vec![Line::default(); (sets * config.ways as u64) as usize],
            set_shift: config.block_bytes.trailing_zeros(),
            set_mask: sets.wrapping_sub(1),
            sets,
            clock: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Splits an address into (set index, tag): shift+mask. Only correct
    /// for power-of-two set counts — the mono dispatch guarantees it.
    #[inline(always)]
    fn index_pow2(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.set_shift;
        ((block & self.set_mask) as usize, block >> self.set_mask.count_ones())
    }

    /// Splits an address into (set index, tag) for any set count:
    /// divide/modulo. Agrees with [`index_pow2`](Self::index_pow2) on
    /// power-of-two set counts.
    #[inline(always)]
    fn index_general(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.set_shift;
        ((block % self.sets) as usize, block / self.sets)
    }

    /// Splits an address into (set index, tag) along whichever path the
    /// dispatch selected.
    fn index(&self, addr: u64) -> (usize, u64) {
        if self.dispatch == WaysDispatch::Dyn {
            self.index_general(addr)
        } else {
            self.index_pow2(addr)
        }
    }

    /// Accesses `addr`; `is_store` selects the write path. Returns whether
    /// it hit and any dirty block evicted by the fill.
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessResult {
        match self.dispatch {
            WaysDispatch::W1 => self.access_mono::<1>(addr, is_store),
            WaysDispatch::W2 => self.access_mono::<2>(addr, is_store),
            WaysDispatch::W4 => self.access_mono::<4>(addr, is_store),
            WaysDispatch::W8 => self.access_mono::<8>(addr, is_store),
            WaysDispatch::Dyn => self.access_dyn(addr, is_store),
        }
    }

    /// Fixed-geometry instantiation: the set index is a shift+mask and
    /// the set is viewed as `&mut [Line; WAYS]`, so every loop in
    /// [`access_set`] has a compile-time trip count.
    fn access_mono<const WAYS: usize>(&mut self, addr: u64, is_store: bool) -> AccessResult {
        self.clock += 1;
        let (set, tag) = self.index_pow2(addr);
        let base = set * WAYS;
        let set_lines: &mut [Line; WAYS] =
            (&mut self.lines[base..base + WAYS]).try_into().expect("set holds WAYS lines");
        access_set(
            set_lines,
            tag,
            is_store,
            self.clock,
            self.config.write_policy,
            set as u64,
            self.sets,
            self.set_shift,
        )
    }

    /// Dynamic fallback for geometries without a monomorphized
    /// instantiation (odd associativity or non-power-of-two set count):
    /// same body, runtime trip count, divide/modulo indexing.
    fn access_dyn(&mut self, addr: u64, is_store: bool) -> AccessResult {
        self.clock += 1;
        let (set, tag) = self.index_general(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        access_set(
            &mut self.lines[base..base + ways],
            tag,
            is_store,
            self.clock,
            self.config.write_policy,
            set as u64,
            self.sets,
            self.set_shift,
        )
    }

    /// The associativity the access path was specialized for (`None` for
    /// the dynamic fallback — odd associativity *or* a non-power-of-two
    /// set count, which cannot use shift+mask indexing). Exposed so
    /// tests can pin which geometries are const-instantiated, and so
    /// block-replay loops can assert every shipped platform takes the
    /// specialized path.
    pub fn monomorphized_ways(&self) -> Option<u32> {
        match self.dispatch {
            WaysDispatch::W1 => Some(1),
            WaysDispatch::W2 => Some(2),
            WaysDispatch::W4 => Some(4),
            WaysDispatch::W8 => Some(8),
            WaysDispatch::Dyn => None,
        }
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (keeps geometry).
    pub fn clear(&mut self) {
        self.lines.fill(Line::default());
        self.clock = 0;
    }
}

/// The shared access body: tag match, LRU touch, victim choice, fill.
///
/// Called with `&mut [Line; WAYS]` (coerced to a slice whose length the
/// optimizer knows) from the monomorphized instantiations and with a
/// runtime slice from the dynamic fallback. `#[inline(always)]` so each
/// caller gets its own specialized copy.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn access_set(
    set_lines: &mut [Line],
    tag: u64,
    is_store: bool,
    clock: u64,
    write_policy: WritePolicy,
    set: u64,
    sets: u64,
    set_shift: u32,
) -> AccessResult {
    if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
        if !crate::inject::active(crate::inject::LRU_TOUCH) {
            line.last_use = clock;
        }
        if is_store {
            match write_policy {
                WritePolicy::WriteBackAllocate => line.dirty = true,
                WritePolicy::WriteThroughNoAllocate => {}
            }
        }
        return AccessResult { hit: true, writeback: None };
    }

    // Miss. Write-through/no-allocate stores do not fill.
    if is_store && write_policy == WritePolicy::WriteThroughNoAllocate {
        return AccessResult { hit: false, writeback: None };
    }

    // Fill: choose an invalid way, else the LRU way.
    let victim_idx = match set_lines.iter().position(|l| !l.valid) {
        Some(i) => i,
        None => {
            let (i, _) = set_lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .expect("non-empty set");
            i
        }
    };
    let victim = set_lines[victim_idx];
    // `tag * sets + set` inverts both index paths: for power-of-two set
    // counts it equals `(tag << set_bits) | set`, and for the general
    // path it inverts the divide/modulo split.
    let writeback =
        (victim.valid && victim.dirty).then(|| (victim.tag * sets + set) << set_shift);
    set_lines[victim_idx] = Line {
        tag,
        valid: true,
        dirty: is_store
            && write_policy == WritePolicy::WriteBackAllocate
            && !crate::inject::active(crate::inject::DIRTY_WRITEBACK),
        last_use: clock,
    };
    AccessResult { hit: false, writeback }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B blocks = 256 B.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same block");
        assert!(!c.access(64, false).hit, "next block");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks whose block-address has bit 6 clear: 0x000, 0x080, 0x100...
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000 so 0x080 is LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn writeback_emitted_for_dirty_victim() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let r = c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn clean_victim_produces_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        let r = c.access(0x100, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_through_stores_do_not_allocate() {
        let mut c = Cache::new(
            CacheConfig::new(256, 2, 64).with_write_policy(WritePolicy::WriteThroughNoAllocate),
        );
        assert!(!c.access(0x000, true).hit);
        assert!(!c.probe(0x000), "store miss must not fill");
        c.access(0x000, false);
        assert!(c.access(0x000, true).hit, "store hit allowed");
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets x 1 way.
        let mut c = Cache::new(CacheConfig::new(256, 1, 64));
        c.access(0x000, false);
        c.access(0x100, false); // same set (4 sets of 64B: set = block % 4)
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn clear_invalidates() {
        let mut c = tiny();
        c.access(0x000, false);
        c.clear();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn distinct_tags_same_set_coexist_up_to_assoc() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        assert!(c.probe(0x000) && c.probe(0x080));
    }

    #[test]
    fn platform_associativities_are_monomorphized() {
        // The four platform geometries (1/2/4/8 ways over power-of-two
        // set counts) get fixed-trip shift+mask instantiations; odd
        // associativity takes the dynamic path.
        for ways in [1u32, 2, 4, 8] {
            let c = Cache::new(CacheConfig::new(4096, ways, 64));
            assert_eq!(c.monomorphized_ways(), Some(ways));
        }
        let c = Cache::new(CacheConfig::new(4096 * 3, 3, 64));
        assert_eq!(c.monomorphized_ways(), None);
    }

    #[test]
    fn non_pow2_set_count_disqualifies_shift_mask_indexing() {
        // 3 sets x 2 ways: the associativity alone would qualify, but
        // masking with a non-power-of-two set count would alias sets, so
        // the dispatch must fall back to the general divide/modulo path.
        let c = Cache::new(CacheConfig::new(3 * 2 * 64, 2, 64));
        assert_eq!(c.monomorphized_ways(), None);
    }

    #[test]
    fn non_pow2_set_count_is_textbook_lru_with_modulo_indexing() {
        // 3 sets x 1 way x 64 B blocks: set = block % 3. Blocks 0 and 3
        // conflict; blocks 0, 1, 2 coexist.
        let mut c = Cache::new(CacheConfig::new(3 * 64, 1, 64));
        for blk in 0..3u64 {
            assert!(!c.access(blk * 64, false).hit);
        }
        for blk in 0..3u64 {
            assert!(c.access(blk * 64, false).hit, "blocks 0..3 map to distinct sets");
        }
        assert!(!c.access(3 * 64, false).hit, "block 3 conflicts with block 0");
        assert!(!c.probe(0));
        assert!(c.probe(3 * 64) && c.probe(64) && c.probe(2 * 64));
    }

    #[test]
    fn non_pow2_writeback_reconstructs_the_victim_address() {
        // Direct-mapped, 3 sets: dirty block 0 is evicted by block 3
        // (same set); the writeback address must be block 0's, proving
        // `tag * sets + set` inverts the modulo index split.
        let mut c = Cache::new(CacheConfig::new(3 * 64, 1, 64));
        c.access(0, true); // dirty fill of set 0
        let r = c.access(3 * 64, false); // evicts it
        assert_eq!(r.writeback, Some(0));
        // And a deeper tag: block 9 (tag 3, set 0) evicting block 3.
        c.access(9 * 64, true);
        let r = c.access(12 * 64, false);
        assert_eq!(r.writeback, Some(9 * 64));
    }

    #[test]
    fn dynamic_fallback_is_textbook_lru_too() {
        // The dynamic path runs the same shared body as the unrolled
        // instantiations; pin its fill/LRU behavior on an odd geometry.
        let mut c = Cache::new(CacheConfig::new(6 * 64, 6, 64)); // 1 set x 6 ways
        assert_eq!(c.monomorphized_ways(), None);
        for blk in 0..6u64 {
            assert!(!c.access(blk * 64, false).hit);
        }
        for blk in 0..6u64 {
            assert!(c.access(blk * 64, false).hit);
        }
        // Touch order is 0..5, so 0 is LRU; a 7th block evicts it.
        c.access(6 * 64, false);
        assert!(!c.probe(0));
        assert!(c.probe(6 * 64));
    }
}
