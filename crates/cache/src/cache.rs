//! A single set-associative cache with true-LRU replacement.

use crate::config::{CacheConfig, WritePolicy};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Address of a dirty block evicted by this access's fill, if any.
    /// The owner (the hierarchy) forwards it to the next level.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// Compile-time specialization of the per-access loops by associativity.
///
/// The four platform geometries use 1/2/4/8 ways, so those get dedicated
/// monomorphized instantiations whose tag-match and LRU-victim loops have
/// fixed trip counts (`access_set` over `&mut [Line; WAYS]` — the
/// optimizer fully unrolls them); any other associativity takes the
/// dynamic slice path, which runs the very same body over a runtime
/// length. Both paths share one implementation, so results are identical
/// by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaysDispatch {
    W1,
    W2,
    W4,
    W8,
    Dyn,
}

/// A single level of cache: set-associative, true-LRU, with write-back or
/// write-through policy per its [`CacheConfig`].
///
/// # Example
///
/// ```
/// use bioperf_cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(!c.access(0x40, false).hit);
/// assert!(c.access(0x40, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    /// `set_mask.count_ones()`, hoisted out of the access path.
    set_bits: u32,
    dispatch: WaysDispatch,
    clock: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        Self {
            dispatch: match config.ways {
                1 => WaysDispatch::W1,
                2 => WaysDispatch::W2,
                4 => WaysDispatch::W4,
                8 => WaysDispatch::W8,
                _ => WaysDispatch::Dyn,
            },
            config,
            lines: vec![Line::default(); (sets * config.ways as u64) as usize],
            set_shift: config.block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            set_bits: (sets - 1).count_ones(),
            clock: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Splits an address into (set index, tag).
    fn index(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.set_shift;
        ((block & self.set_mask) as usize, block >> self.set_bits)
    }

    /// Accesses `addr`; `is_store` selects the write path. Returns whether
    /// it hit and any dirty block evicted by the fill.
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessResult {
        match self.dispatch {
            WaysDispatch::W1 => self.access_mono::<1>(addr, is_store),
            WaysDispatch::W2 => self.access_mono::<2>(addr, is_store),
            WaysDispatch::W4 => self.access_mono::<4>(addr, is_store),
            WaysDispatch::W8 => self.access_mono::<8>(addr, is_store),
            WaysDispatch::Dyn => self.access_dyn(addr, is_store),
        }
    }

    /// Fixed-associativity instantiation: the set is viewed as
    /// `&mut [Line; WAYS]`, so every loop in [`access_set`] has a
    /// compile-time trip count.
    fn access_mono<const WAYS: usize>(&mut self, addr: u64, is_store: bool) -> AccessResult {
        self.clock += 1;
        let (set, tag) = self.index(addr);
        let base = set * WAYS;
        let set_lines: &mut [Line; WAYS] =
            (&mut self.lines[base..base + WAYS]).try_into().expect("set holds WAYS lines");
        access_set(
            set_lines,
            tag,
            is_store,
            self.clock,
            self.config.write_policy,
            set as u64,
            self.set_bits,
            self.set_shift,
        )
    }

    /// Dynamic fallback for associativities without a monomorphized
    /// instantiation: same body, runtime trip count.
    fn access_dyn(&mut self, addr: u64, is_store: bool) -> AccessResult {
        self.clock += 1;
        let (set, tag) = self.index(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        access_set(
            &mut self.lines[base..base + ways],
            tag,
            is_store,
            self.clock,
            self.config.write_policy,
            set as u64,
            self.set_bits,
            self.set_shift,
        )
    }

    /// The associativity the access path was specialized for (`None` for
    /// the dynamic fallback). Exposed so tests can pin which geometries
    /// are const-instantiated.
    pub fn monomorphized_ways(&self) -> Option<u32> {
        match self.dispatch {
            WaysDispatch::W1 => Some(1),
            WaysDispatch::W2 => Some(2),
            WaysDispatch::W4 => Some(4),
            WaysDispatch::W8 => Some(8),
            WaysDispatch::Dyn => None,
        }
    }

    /// Whether the block containing `addr` is currently resident (no state
    /// change).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let ways = self.config.ways as usize;
        self.lines[set * ways..(set + 1) * ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (keeps geometry).
    pub fn clear(&mut self) {
        self.lines.fill(Line::default());
        self.clock = 0;
    }
}

/// The shared access body: tag match, LRU touch, victim choice, fill.
///
/// Called with `&mut [Line; WAYS]` (coerced to a slice whose length the
/// optimizer knows) from the monomorphized instantiations and with a
/// runtime slice from the dynamic fallback. `#[inline(always)]` so each
/// caller gets its own specialized copy.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn access_set(
    set_lines: &mut [Line],
    tag: u64,
    is_store: bool,
    clock: u64,
    write_policy: WritePolicy,
    set: u64,
    set_bits: u32,
    set_shift: u32,
) -> AccessResult {
    if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
        if !crate::inject::active(crate::inject::LRU_TOUCH) {
            line.last_use = clock;
        }
        if is_store {
            match write_policy {
                WritePolicy::WriteBackAllocate => line.dirty = true,
                WritePolicy::WriteThroughNoAllocate => {}
            }
        }
        return AccessResult { hit: true, writeback: None };
    }

    // Miss. Write-through/no-allocate stores do not fill.
    if is_store && write_policy == WritePolicy::WriteThroughNoAllocate {
        return AccessResult { hit: false, writeback: None };
    }

    // Fill: choose an invalid way, else the LRU way.
    let victim_idx = match set_lines.iter().position(|l| !l.valid) {
        Some(i) => i,
        None => {
            let (i, _) = set_lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .expect("non-empty set");
            i
        }
    };
    let victim = set_lines[victim_idx];
    let writeback =
        (victim.valid && victim.dirty).then(|| ((victim.tag << set_bits) | set) << set_shift);
    set_lines[victim_idx] = Line {
        tag,
        valid: true,
        dirty: is_store
            && write_policy == WritePolicy::WriteBackAllocate
            && !crate::inject::active(crate::inject::DIRTY_WRITEBACK),
        last_use: clock,
    };
    AccessResult { hit: false, writeback }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B blocks = 256 B.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same block");
        assert!(!c.access(64, false).hit, "next block");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds blocks whose block-address has bit 6 clear: 0x000, 0x080, 0x100...
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000 so 0x080 is LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn writeback_emitted_for_dirty_victim() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let r = c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn clean_victim_produces_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        let r = c.access(0x100, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_through_stores_do_not_allocate() {
        let mut c = Cache::new(
            CacheConfig::new(256, 2, 64).with_write_policy(WritePolicy::WriteThroughNoAllocate),
        );
        assert!(!c.access(0x000, true).hit);
        assert!(!c.probe(0x000), "store miss must not fill");
        c.access(0x000, false);
        assert!(c.access(0x000, true).hit, "store hit allowed");
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 4 sets x 1 way.
        let mut c = Cache::new(CacheConfig::new(256, 1, 64));
        c.access(0x000, false);
        c.access(0x100, false); // same set (4 sets of 64B: set = block % 4)
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn clear_invalidates() {
        let mut c = tiny();
        c.access(0x000, false);
        c.clear();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn distinct_tags_same_set_coexist_up_to_assoc() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        assert!(c.probe(0x000) && c.probe(0x080));
    }

    #[test]
    fn platform_associativities_are_monomorphized() {
        // The four platform geometries (1/2/4/8 ways) get fixed-trip
        // instantiations; anything else takes the dynamic path.
        for ways in [1u32, 2, 4, 8] {
            let c = Cache::new(CacheConfig::new(4096, ways, 64));
            assert_eq!(c.monomorphized_ways(), Some(ways));
        }
        let c = Cache::new(CacheConfig::new(4096 * 3, 3, 64));
        assert_eq!(c.monomorphized_ways(), None);
    }

    #[test]
    fn dynamic_fallback_is_textbook_lru_too() {
        // The dynamic path runs the same shared body as the unrolled
        // instantiations; pin its fill/LRU behavior on an odd geometry.
        let mut c = Cache::new(CacheConfig::new(6 * 64, 6, 64)); // 1 set x 6 ways
        assert_eq!(c.monomorphized_ways(), None);
        for blk in 0..6u64 {
            assert!(!c.access(blk * 64, false).hit);
        }
        for blk in 0..6u64 {
            assert!(c.access(blk * 64, false).hit);
        }
        // Touch order is 0..5, so 0 is LRU; a 7th block evicts it.
        c.access(6 * 64, false);
        assert!(!c.probe(0));
        assert!(c.probe(6 * 64));
    }
}
