//! Two-level hierarchy with per-level demand statistics and AMAT.

use bioperf_isa::{MicroOp, Program};
use bioperf_metrics::{LogHistogram, MetricSet};
use bioperf_trace::TraceConsumer;

use crate::cache::Cache;
use crate::config::{CacheConfig, LatencyConfig};
use crate::prefetch::{PrefetchEngine, Prefetcher};

/// Demand access type presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A data load.
    Load,
    /// A data store.
    Store,
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in the L1 data cache.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both caches; serviced by main memory.
    Memory,
}

/// Demand statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Load accesses presented to this level.
    pub load_accesses: u64,
    /// Load accesses that missed.
    pub load_misses: u64,
    /// Store accesses presented to this level.
    pub store_accesses: u64,
    /// Store accesses that missed.
    pub store_misses: u64,
    /// Dirty evictions written back out of this level.
    pub writebacks: u64,
}

impl LevelStats {
    /// Local load miss ratio (misses at this level / accesses that reached
    /// this level), the quantity in the paper's Table 2.
    pub fn load_miss_ratio(&self) -> f64 {
        if self.load_accesses == 0 {
            0.0
        } else {
            self.load_misses as f64 / self.load_accesses as f64
        }
    }
}

/// Aggregate statistics of a [`Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache demand stats.
    pub l1: LevelStats,
    /// Unified L2 demand stats (data side only — we trace no instruction
    /// fetches, mirroring the paper's data-cache focus).
    pub l2: LevelStats,
}

impl HierarchyStats {
    /// Fraction of all loads serviced by main memory (the paper's
    /// "overall" column: ~0.03% on average).
    pub fn overall_load_memory_ratio(&self) -> f64 {
        if self.l1.load_accesses == 0 {
            0.0
        } else {
            self.l2.load_misses as f64 / self.l1.load_accesses as f64
        }
    }
}

/// L1 data cache + unified L2 + main memory.
///
/// # Example
///
/// ```
/// use bioperf_cache::{alpha21264_hierarchy, AccessKind};
///
/// let mut h = alpha21264_hierarchy();
/// for _pass in 0..20 {
///     for i in 0..1000u64 {
///         h.access(i * 8, AccessKind::Load); // small working set: mostly L1 hits
///     }
/// }
/// assert!(h.stats().l1.load_miss_ratio() < 0.01);
/// assert!(h.amat() < 3.5);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1d: Cache,
    l2: Cache,
    latencies: LatencyConfig,
    stats: HierarchyStats,
    prefetch: PrefetchEngine,
    // Event metrics accumulate into dedicated local fields (one counter
    // per service level plus the latency histogram) so the per-access
    // cost when enabled is an array bump and a histogram record — no
    // name-keyed lookup; `take_metrics` publishes them under their names.
    metrics_on: bool,
    m_serviced: [u64; 3],
    m_latency: LogHistogram,
}

impl Hierarchy {
    /// Builds a hierarchy from per-level configurations (no prefetching).
    pub fn new(l1d: CacheConfig, l2: CacheConfig, latencies: LatencyConfig) -> Self {
        let block = l1d.block_bytes;
        Self {
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            latencies,
            stats: HierarchyStats::default(),
            prefetch: PrefetchEngine::new(Prefetcher::None, block),
            metrics_on: false,
            m_serviced: [0; 3],
            m_latency: LogHistogram::new(),
        }
    }

    /// Switches on event-metric collection (service-level counters and a
    /// latency histogram per demand access). Off by default: the access
    /// path then pays exactly one predictable branch per event — the
    /// metrics layer's zero-cost-when-off contract.
    pub fn with_metrics(mut self) -> Self {
        self.metrics_on = true;
        self
    }

    /// Takes the collected event metrics (empty if collection is off),
    /// leaving collection in its current mode.
    pub fn take_metrics(&mut self) -> MetricSet {
        let mut out = MetricSet::new();
        // Names appear only once touched, matching the lazily-created
        // slots of the name-keyed path this replaced.
        let names = ["serviced_l1", "serviced_l2", "serviced_memory"];
        for (name, &n) in names.iter().zip(&self.m_serviced) {
            if n > 0 {
                out.counter_add(name, n);
            }
        }
        if self.m_latency.count() > 0 {
            out.histogram_merge("access_latency_cycles", &self.m_latency);
        }
        self.m_serviced = [0; 3];
        self.m_latency = LogHistogram::new();
        out
    }

    /// Attaches an L1 prefetcher (prefetched blocks fill L1 directly;
    /// their upstream traffic is not charged — an optimistic prefetcher,
    /// which only strengthens the paper's "prefetching cannot help here"
    /// conclusion).
    pub fn with_prefetcher(mut self, policy: Prefetcher) -> Self {
        self.prefetch = PrefetchEngine::new(policy, self.l1d.config().block_bytes);
        self
    }

    /// Prefetch statistics (issued / useless).
    pub fn prefetch_stats(&self) -> &PrefetchEngine {
        &self.prefetch
    }

    /// The configured latencies.
    pub fn latencies(&self) -> LatencyConfig {
        self.latencies
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Performs a demand access and returns its total latency in cycles.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        self.access_detailed(addr, kind).1
    }

    /// Performs a demand access, returning the servicing level and the
    /// total latency in cycles.
    pub fn access_detailed(&mut self, addr: u64, kind: AccessKind) -> (ServicedBy, u64) {
        let (level, latency) = self.access_inner(addr, kind);
        if self.metrics_on {
            self.m_serviced[match level {
                ServicedBy::L1 => 0,
                ServicedBy::L2 => 1,
                ServicedBy::Memory => 2,
            }] += 1;
            self.m_latency.record(latency);
        }
        (level, latency)
    }

    /// Block replay entry: runs a batch of demand accesses given as
    /// parallel address/is-load columns.
    ///
    /// Semantically identical to calling [`access`](Self::access) per
    /// element; the batch form hoists the metrics-mode branch out of the
    /// loop so the common metrics-off replay runs a tight
    /// [`access_inner`] loop with no instrumentation test per access.
    ///
    /// [`access_inner`]: Self::access_detailed
    pub fn access_block(&mut self, addrs: &[u64], loads: &[bool]) {
        debug_assert_eq!(addrs.len(), loads.len());
        let kind_of = |is_load: bool| if is_load { AccessKind::Load } else { AccessKind::Store };
        if self.metrics_on {
            for (&addr, &is_load) in addrs.iter().zip(loads) {
                self.access_detailed(addr, kind_of(is_load));
            }
        } else {
            for (&addr, &is_load) in addrs.iter().zip(loads) {
                self.access_inner(addr, kind_of(is_load));
            }
        }
    }

    fn access_inner(&mut self, addr: u64, kind: AccessKind) -> (ServicedBy, u64) {
        let is_store = kind == AccessKind::Store;
        match kind {
            AccessKind::Load => self.stats.l1.load_accesses += 1,
            AccessKind::Store => self.stats.l1.store_accesses += 1,
        }
        let r1 = self.l1d.access(addr, is_store);
        if let Some(wb) = r1.writeback {
            self.stats.l1.writebacks += 1;
            // Write the dirty block back into L2 (not counted as demand).
            let r2 = self.l2.access(wb, true);
            if r2.writeback.is_some() {
                self.stats.l2.writebacks += 1;
            }
        }
        if r1.hit {
            return (ServicedBy::L1, self.latencies.total(false, false));
        }
        match kind {
            AccessKind::Load => self.stats.l1.load_misses += 1,
            AccessKind::Store => self.stats.l1.store_misses += 1,
        }
        self.prefetch.on_miss(addr, &mut self.l1d);

        match kind {
            AccessKind::Load => self.stats.l2.load_accesses += 1,
            AccessKind::Store => self.stats.l2.store_accesses += 1,
        }
        let r2 = self.l2.access(addr, is_store);
        if r2.writeback.is_some() {
            self.stats.l2.writebacks += 1;
        }
        if r2.hit {
            return (ServicedBy::L2, self.latencies.total(true, false));
        }
        match kind {
            AccessKind::Load => self.stats.l2.load_misses += 1,
            AccessKind::Store => self.stats.l2.store_misses += 1,
        }
        (ServicedBy::Memory, self.latencies.total(true, true))
    }

    /// Average memory access time for loads, computed with the paper's
    /// formula from the accumulated local miss ratios.
    pub fn amat(&self) -> f64 {
        let m1 = self.stats.l1.load_miss_ratio();
        let m2 = self.stats.l2.load_miss_ratio();
        self.latencies.amat(m1, m2)
    }

    /// Invalidates all cached state and clears statistics.
    pub fn reset(&mut self) {
        self.l1d.clear();
        self.l2.clear();
        self.stats = HierarchyStats::default();
    }
}

/// The paper's reference configuration (Table 3 geometry, Section 2.1
/// latencies): 64 KB 2-way L1D, 4 MB direct-mapped unified L2, 64-byte
/// blocks, write-back/write-allocate, latencies 3/5/72.
pub fn alpha21264_hierarchy() -> Hierarchy {
    Hierarchy::new(
        CacheConfig::new(64 * 1024, 2, 64),
        CacheConfig::new(4 * 1024 * 1024, 1, 64),
        LatencyConfig::alpha21264(),
    )
}

/// Trace consumer adapter: feeds every load and store of a micro-op trace
/// through a [`Hierarchy`], making the cache simulator pluggable into a
/// [`Tape`](bioperf_trace::Tape).
#[derive(Debug, Clone)]
pub struct CacheSim {
    hierarchy: Hierarchy,
}

impl CacheSim {
    /// Wraps a hierarchy for trace consumption.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Self { hierarchy }
    }

    /// Switches on event-metric collection in the wrapped hierarchy.
    pub fn with_metrics(mut self) -> Self {
        self.hierarchy = self.hierarchy.with_metrics();
        self
    }

    /// Takes the wrapped hierarchy's collected event metrics.
    pub fn take_metrics(&mut self) -> bioperf_metrics::MetricSet {
        self.hierarchy.take_metrics()
    }

    /// The wrapped hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Unwraps the hierarchy.
    pub fn into_hierarchy(self) -> Hierarchy {
        self.hierarchy
    }
}

impl TraceConsumer for CacheSim {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if let Some(addr) = op.addr {
            let kind = if op.kind.is_load() { AccessKind::Load } else { AccessKind::Store };
            self.hierarchy.access(addr, kind);
        }
    }

    fn consume_block(&mut self, block: &bioperf_trace::OpBlock, _program: &Program) {
        // The block decoder pre-filters address-carrying ops into parallel
        // columns (same `addr.is_some()` predicate as `consume`), so the
        // hot loop touches only memory ops and skips the MicroOp layout.
        self.hierarchy.access_block(block.mem_addrs(), block.mem_loads());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy() -> Hierarchy {
        Hierarchy::new(
            CacheConfig::new(1024, 2, 64),       // 1 KB L1
            CacheConfig::new(16 * 1024, 1, 64),  // 16 KB L2
            LatencyConfig::alpha21264(),
        )
    }

    #[test]
    fn first_touch_goes_to_memory() {
        let mut h = small_hierarchy();
        let (lvl, lat) = h.access_detailed(0x1000, AccessKind::Load);
        assert_eq!(lvl, ServicedBy::Memory);
        assert_eq!(lat, 80);
    }

    #[test]
    fn second_touch_hits_l1() {
        let mut h = small_hierarchy();
        h.access(0x1000, AccessKind::Load);
        let (lvl, lat) = h.access_detailed(0x1000, AccessKind::Load);
        assert_eq!(lvl, ServicedBy::L1);
        assert_eq!(lat, 3);
    }

    #[test]
    fn l1_victim_still_hits_l2() {
        let mut h = small_hierarchy();
        // L1: 8 sets x 2 ways. Fill set 0 beyond capacity; all blocks stay in L2.
        for i in 0..4u64 {
            h.access(i * 512, AccessKind::Load); // same L1 set 0
        }
        let (lvl, _) = h.access_detailed(0, AccessKind::Load);
        assert_eq!(lvl, ServicedBy::L2);
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let mut h = small_hierarchy();
        for i in 0..100u64 {
            h.access(i * 64, AccessKind::Load);
        }
        for i in 0..50u64 {
            h.access(i * 64, AccessKind::Store);
        }
        let s = h.stats();
        assert_eq!(s.l1.load_accesses, 100);
        assert_eq!(s.l1.store_accesses, 50);
        // Every L1 miss becomes exactly one L2 access.
        assert_eq!(s.l1.load_misses, s.l2.load_accesses);
        assert_eq!(s.l1.store_misses, s.l2.store_accesses);
        assert!(s.l2.load_misses <= s.l2.load_accesses);
    }

    #[test]
    fn amat_equals_l1_latency_when_all_hit() {
        let mut h = small_hierarchy();
        h.access(0, AccessKind::Load);
        for _ in 0..999 {
            h.access(0, AccessKind::Load);
        }
        // miss ratio 1/1000 -> AMAT barely above 3.
        assert!(h.amat() > 3.0 && h.amat() < 3.1, "amat = {}", h.amat());
    }

    #[test]
    fn dirty_writeback_reaches_l2() {
        let mut h = small_hierarchy();
        h.access(0x000, AccessKind::Store); // dirty in L1
        for i in 1..3u64 {
            h.access(i * 512, AccessKind::Load); // evict set 0
        }
        assert!(h.stats().l1.writebacks >= 1);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut h = small_hierarchy();
        h.access(0x40, AccessKind::Load);
        h.reset();
        assert_eq!(h.stats().l1.load_accesses, 0);
        let (lvl, _) = h.access_detailed(0x40, AccessKind::Load);
        assert_eq!(lvl, ServicedBy::Memory);
    }

    #[test]
    fn chunked_working_set_has_low_miss_rate() {
        // The paper's explanation for the low L1 miss rates: programs work
        // on an L1-resident chunk for a while before moving on.
        let mut h = alpha21264_hierarchy();
        for chunk in 0..8u64 {
            let base = chunk * 16 * 1024;
            for _pass in 0..50 {
                for i in 0..(16 * 1024 / 8) {
                    h.access(base + i * 8, AccessKind::Load);
                }
            }
        }
        // Only compulsory misses remain: 256 blocks per 16 KB chunk over
        // 102 400 accesses per chunk = 0.25% local miss rate.
        assert!(
            h.stats().l1.load_miss_ratio() < 0.003,
            "chunked access should almost always hit: {}",
            h.stats().l1.load_miss_ratio()
        );
    }

    #[test]
    fn event_metrics_match_demand_stats() {
        let mut h = small_hierarchy().with_metrics();
        for i in 0..64u64 {
            h.access(i * 8, AccessKind::Load);
        }
        for i in 0..64u64 {
            h.access(i * 8, AccessKind::Load);
        }
        let m = h.take_metrics();
        let total = m.counter("serviced_l1").unwrap_or(0)
            + m.counter("serviced_l2").unwrap_or(0)
            + m.counter("serviced_memory").unwrap_or(0);
        assert_eq!(total, h.stats().l1.load_accesses);
        let lat = m.histogram("access_latency_cycles").expect("latency histogram");
        assert_eq!(lat.count(), total);
        assert_eq!(lat.min(), Some(3), "L1 hits cost the 3-cycle hit latency");
        // take_metrics drained the set but left collection on.
        h.access(0, AccessKind::Load);
        assert_eq!(h.take_metrics().counter("serviced_l1"), Some(1));
    }

    #[test]
    fn access_block_matches_per_access_loop() {
        // Same mixed load/store pattern through both entry points, with
        // metrics on and off; stats and metrics must be identical.
        let addrs: Vec<u64> = (0..256u64).map(|i| (i * 37) % 97 * 64).collect();
        let loads: Vec<bool> = (0..256).map(|i| i % 3 != 0).collect();
        for metrics in [false, true] {
            let build = || {
                let h = small_hierarchy();
                if metrics { h.with_metrics() } else { h }
            };
            let mut per_op = build();
            for (&a, &l) in addrs.iter().zip(&loads) {
                per_op.access(a, if l { AccessKind::Load } else { AccessKind::Store });
            }
            let mut blocked = build();
            blocked.access_block(&addrs, &loads);
            assert_eq!(per_op.stats(), blocked.stats(), "metrics={metrics}");
            assert_eq!(
                per_op.take_metrics().to_json().render(),
                blocked.take_metrics().to_json().render(),
                "metrics={metrics}"
            );
        }
    }

    #[test]
    fn metrics_off_collects_nothing_and_changes_nothing() {
        let mut plain = small_hierarchy();
        let mut instrumented = small_hierarchy().with_metrics();
        for i in 0..512u64 {
            plain.access(i * 64, AccessKind::Load);
            instrumented.access(i * 64, AccessKind::Load);
        }
        assert_eq!(plain.stats(), instrumented.stats(), "metrics must not perturb simulation");
        assert!(plain.take_metrics().is_empty());
        assert!(!instrumented.take_metrics().is_empty());
    }
}
