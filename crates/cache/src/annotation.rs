//! Packed per-access miss-level annotation streams (`bioperf-ann/v1`).
//!
//! The factored sweep's cache pass walks a recording's hierarchy-access
//! sequence once per cache-axis configuration and records, for every
//! demand access, which level serviced it. Each outcome is one of three
//! codes — L1 hit, L2 hit, or memory — so the stream packs four
//! annotations per byte. The timing pass later replays the same access
//! sequence and converts each code back into a latency through the
//! cell's own [`LatencyConfig`](crate::LatencyConfig), without touching
//! a live cache.
//!
//! Streams normally live in memory (2 bits/access: a 256 M-op trace
//! costs ~64 MB per config), but for grids whose resident set would
//! exceed the spill budget the sweep writes them to disk in the
//! checksummed `bioperf-ann/v1` container defined here — the same
//! magic/version/count/FNV discipline as `bioperf-seg/v1`.

use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::hierarchy::{AccessKind, Hierarchy, HierarchyStats, ServicedBy};

/// Schema tag of the on-disk annotation container.
pub const ANN_SCHEMA: &str = "bioperf-ann/v1";

const ANN_MAGIC: [u8; 8] = *b"BPANN1\0\0";
const ANN_VERSION: u32 = 1;
/// magic(8) + version(4) + reserved(4) + count(8) + payload checksum(8).
const ANN_HEADER_LEN: usize = 32;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Errors loading a `bioperf-ann/v1` container.
#[derive(Debug)]
pub enum AnnotationError {
    /// Underlying I/O failure.
    Io(PathBuf, std::io::Error),
    /// The file does not start with the `bioperf-ann/v1` magic.
    BadMagic(PathBuf),
    /// The container version is not one this build reads.
    BadVersion(PathBuf, u32),
    /// The payload is shorter than the header's annotation count implies.
    Truncated(PathBuf),
    /// The payload checksum does not match the header.
    ChecksumMismatch(PathBuf),
}

impl fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(p, e) => write!(f, "annotation store {}: {e}", p.display()),
            Self::BadMagic(p) => {
                write!(f, "annotation store {}: not a {ANN_SCHEMA} file", p.display())
            }
            Self::BadVersion(p, v) => {
                write!(f, "annotation store {}: unsupported version {v}", p.display())
            }
            Self::Truncated(p) => write!(f, "annotation store {}: truncated payload", p.display()),
            Self::ChecksumMismatch(p) => {
                write!(f, "annotation store {}: payload checksum mismatch", p.display())
            }
        }
    }
}

impl std::error::Error for AnnotationError {}

/// A packed sequence of miss-level codes, two bits per access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotationStream {
    bits: Vec<u8>,
    len: usize,
}

impl AnnotationStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stream with room for `accesses` annotations.
    pub fn with_capacity(accesses: usize) -> Self {
        Self { bits: Vec::with_capacity(accesses.div_ceil(4)), len: 0 }
    }

    /// Number of annotations recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of packed payload (what a save writes after the header).
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Appends one miss-level annotation.
    #[inline]
    pub fn push(&mut self, level: ServicedBy) {
        let code = level_code(level);
        let slot = self.len & 3;
        if slot == 0 {
            self.bits.push(code);
        } else {
            *self.bits.last_mut().expect("non-empty after first push") |= code << (slot * 2);
        }
        self.len += 1;
    }

    /// The raw 2-bit code at `index` (0 = L1, 1 = L2, 2 = memory).
    ///
    /// Out-of-range reads return the benign L1 code rather than
    /// panicking: an exhausted cursor is a *divergence* the conformance
    /// self-check must observe as wrong cycle counts, not a crash.
    #[inline]
    pub fn code(&self, index: usize) -> u8 {
        if index >= self.len {
            return 0;
        }
        (self.bits[index >> 2] >> ((index & 3) * 2)) & 3
    }

    /// A cheap content identity: `(annotation count, FNV-1a of the
    /// packed payload)` — the same checksum a `bioperf-ann/v1` save
    /// writes. Equal keys mean equal miss sequences for the sweep's
    /// timing memo (distinct cache geometries frequently produce the
    /// same sequence — e.g. every L2 that never misses after warmup).
    pub fn content_key(&self) -> (u64, u64) {
        (self.len as u64, fnv1a(&self.bits))
    }

    /// The miss level at `index`, if in range.
    pub fn level(&self, index: usize) -> Option<ServicedBy> {
        if index >= self.len {
            return None;
        }
        Some(match self.code(index) {
            0 => ServicedBy::L1,
            1 => ServicedBy::L2,
            _ => ServicedBy::Memory,
        })
    }

    /// Writes the stream as a `bioperf-ann/v1` container.
    pub fn save(&self, path: &Path) -> Result<(), AnnotationError> {
        let io_err = |e| AnnotationError::Io(path.to_path_buf(), e);
        let mut header = [0u8; ANN_HEADER_LEN];
        header[..8].copy_from_slice(&ANN_MAGIC);
        header[8..12].copy_from_slice(&ANN_VERSION.to_le_bytes());
        header[16..24].copy_from_slice(&(self.len as u64).to_le_bytes());
        header[24..32].copy_from_slice(&fnv1a(&self.bits).to_le_bytes());
        let mut file = std::fs::File::create(path).map_err(io_err)?;
        file.write_all(&header).map_err(io_err)?;
        file.write_all(&self.bits).map_err(io_err)?;
        Ok(())
    }

    /// Reads a `bioperf-ann/v1` container back.
    pub fn load(path: &Path) -> Result<Self, AnnotationError> {
        let io_err = |e| AnnotationError::Io(path.to_path_buf(), e);
        let mut file = std::fs::File::open(path).map_err(io_err)?;
        let mut header = [0u8; ANN_HEADER_LEN];
        file.read_exact(&mut header).map_err(io_err)?;
        if header[..8] != ANN_MAGIC {
            return Err(AnnotationError::BadMagic(path.to_path_buf()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != ANN_VERSION {
            return Err(AnnotationError::BadVersion(path.to_path_buf(), version));
        }
        let len = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes")) as usize;
        let checksum = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        let mut bits = Vec::new();
        file.read_to_end(&mut bits).map_err(io_err)?;
        if bits.len() < len.div_ceil(4) {
            return Err(AnnotationError::Truncated(path.to_path_buf()));
        }
        if fnv1a(&bits) != checksum {
            return Err(AnnotationError::ChecksumMismatch(path.to_path_buf()));
        }
        Ok(Self { bits, len })
    }
}

fn level_code(level: ServicedBy) -> u8 {
    match level {
        ServicedBy::L1 => 0,
        ServicedBy::L2 => 1,
        ServicedBy::Memory => 2,
    }
}

/// A bank of cache-axis configurations simulated from one shared access
/// sequence: each demand access presented to the bank is applied to every
/// member hierarchy, and each member records the servicing level into its
/// own [`AnnotationStream`]. One trace decode thus produces the
/// miss-level streams (and final [`HierarchyStats`]) for every cache
/// geometry in a sweep chunk.
#[derive(Debug)]
pub struct MissLevelBank {
    members: Vec<(Hierarchy, AnnotationStream)>,
    accesses: usize,
}

impl MissLevelBank {
    /// Builds a bank over the given hierarchies (latency values inside
    /// them are irrelevant here: only the servicing level is kept).
    pub fn new(hierarchies: Vec<Hierarchy>) -> Self {
        Self {
            members: hierarchies.into_iter().map(|h| (h, AnnotationStream::new())).collect(),
            accesses: 0,
        }
    }

    /// Number of member configurations.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Accesses presented so far.
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    /// Applies one demand access to every member.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind) {
        for (hierarchy, stream) in &mut self.members {
            let (level, _) = hierarchy.access_detailed(addr, kind);
            stream.push(level);
        }
        self.accesses += 1;
    }

    /// Applies a run of demand accesses given as parallel address /
    /// is-load columns. Semantically a loop over [`access`](Self::access)
    /// but iterated member-major so each hierarchy's state stays hot.
    pub fn access_run(&mut self, addrs: &[u64], loads: &[bool]) {
        debug_assert_eq!(addrs.len(), loads.len());
        for (hierarchy, stream) in &mut self.members {
            for (&addr, &is_load) in addrs.iter().zip(loads) {
                let kind = if is_load { AccessKind::Load } else { AccessKind::Store };
                let (level, _) = hierarchy.access_detailed(addr, kind);
                stream.push(level);
            }
        }
        self.accesses += addrs.len();
    }

    /// Tears the bank down into per-member final stats and streams, in
    /// construction order.
    pub fn finish(self) -> Vec<(HierarchyStats, AnnotationStream)> {
        self.members.into_iter().map(|(h, s)| (*h.stats(), s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, LatencyConfig};

    fn tiny_hierarchy() -> Hierarchy {
        Hierarchy::new(
            CacheConfig::new(1024, 2, 64),
            CacheConfig::new(16 * 1024, 1, 64),
            LatencyConfig::alpha21264(),
        )
    }

    #[test]
    fn push_and_read_round_trip_all_levels() {
        let mut s = AnnotationStream::new();
        let levels = [
            ServicedBy::Memory,
            ServicedBy::L1,
            ServicedBy::L2,
            ServicedBy::L1,
            ServicedBy::Memory,
            ServicedBy::L2,
            ServicedBy::L1,
            ServicedBy::L1,
            ServicedBy::L2,
        ];
        for &l in &levels {
            s.push(l);
        }
        assert_eq!(s.len(), levels.len());
        for (i, &l) in levels.iter().enumerate() {
            assert_eq!(s.level(i), Some(l), "index {i}");
        }
        assert_eq!(s.level(levels.len()), None);
        assert_eq!(s.code(levels.len()), 0, "exhausted cursor reads the benign L1 code");
    }

    #[test]
    fn stream_matches_direct_hierarchy_replay() {
        let addrs: Vec<u64> = (0..600u64).map(|i| (i * 37) % 191 * 64).collect();
        let mut direct = tiny_hierarchy();
        let mut bank = MissLevelBank::new(vec![tiny_hierarchy()]);
        let mut expected = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            expected.push(direct.access_detailed(a, kind).0);
            bank.access(a, kind);
        }
        let mut out = bank.finish();
        let (stats, stream) = out.pop().expect("one member");
        assert_eq!(&stats, direct.stats());
        assert_eq!(stream.len(), addrs.len());
        for (i, &lvl) in expected.iter().enumerate() {
            assert_eq!(stream.level(i), Some(lvl), "access {i}");
        }
    }

    #[test]
    fn access_run_matches_per_access_loop() {
        let addrs: Vec<u64> = (0..512u64).map(|i| (i * 13) % 257 * 64).collect();
        let loads: Vec<bool> = (0..512).map(|i| i % 4 != 1).collect();
        let mut a = MissLevelBank::new(vec![tiny_hierarchy(), tiny_hierarchy()]);
        let mut b = MissLevelBank::new(vec![tiny_hierarchy(), tiny_hierarchy()]);
        for (&addr, &is_load) in addrs.iter().zip(&loads) {
            a.access(addr, if is_load { AccessKind::Load } else { AccessKind::Store });
        }
        b.access_run(&addrs, &loads);
        let fa = a.finish();
        let fb = b.finish();
        assert_eq!(fa.len(), fb.len());
        for ((sa, ta), (sb, tb)) in fa.iter().zip(&fb) {
            assert_eq!(sa, sb);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn save_load_round_trips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("bioperf-ann-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("roundtrip.ann");

        let mut s = AnnotationStream::new();
        for i in 0..1000usize {
            s.push(match i % 5 {
                0 => ServicedBy::Memory,
                1 | 2 => ServicedBy::L2,
                _ => ServicedBy::L1,
            });
        }
        s.save(&path).expect("save");
        let back = AnnotationStream::load(&path).expect("load");
        assert_eq!(back, s);

        // Flip a payload bit: checksum must catch it.
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            AnnotationStream::load(&path),
            Err(AnnotationError::ChecksumMismatch(_))
        ));

        // Wrong magic.
        bytes[0] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(AnnotationStream::load(&path), Err(AnnotationError::BadMagic(_))));

        // Truncated payload.
        s.save(&path).expect("save");
        let full = std::fs::read(&path).expect("read");
        std::fs::write(&path, &full[..full.len() - 4]).expect("write");
        assert!(matches!(AnnotationStream::load(&path), Err(AnnotationError::Truncated(_))));

        std::fs::remove_dir_all(&dir).ok();
    }
}
