//! Property tests for the all-associativity stack-distance profiler:
//! the analytic machinery behind the factored sweep's cache-pass
//! verification. One profile of an access stream must (a) obey LRU
//! inclusion — more ways never miss more, (b) conserve accesses in its
//! histograms, and (c) derive exactly the miss count a real set-indexed
//! LRU cache simulates, for arbitrary streams and geometries.

use bioperf_cache::{Cache, CacheConfig, StackDistProfiler, MAX_TRACKED_WAYS};
use proptest::prelude::*;

proptest! {
    /// LRU inclusion: for a fixed set count, a cache with more ways
    /// contains everything the narrower cache contains, so misses are
    /// monotonically non-increasing in associativity.
    #[test]
    fn misses_never_increase_with_ways(
        addrs in prop::collection::vec(0u64..1 << 14, 1..400),
        set_bits in 0u32..6,
    ) {
        let sets = 1u64 << set_bits;
        let mut prof = StackDistProfiler::new(64, &[sets]);
        for &a in &addrs {
            prof.access(a);
        }
        let mut last = u64::MAX;
        for ways in 1..=MAX_TRACKED_WAYS as u32 {
            let m = prof.misses(sets, ways);
            prop_assert!(m <= last, "misses rose from {last} to {m} at {ways} ways");
            last = m;
        }
    }

    /// Conservation: every access lands in exactly one histogram bucket
    /// or the cold-miss count, for every profiled set count at once.
    #[test]
    fn histogram_buckets_conserve_accesses(
        addrs in prop::collection::vec(0u64..1 << 16, 1..400),
    ) {
        let set_counts = [1u64, 4, 16, 64];
        let mut prof = StackDistProfiler::new(32, &set_counts);
        for &a in &addrs {
            prof.access(a);
        }
        prop_assert_eq!(prof.accesses(), addrs.len() as u64);
        for &sets in &set_counts {
            let reuses: u64 = prof.histogram(sets).iter().sum();
            prop_assert_eq!(
                reuses + prof.cold_misses(),
                prof.accesses(),
                "histogram for {} sets does not conserve accesses",
                sets
            );
        }
    }

    /// Exactness: the misses derived from one profile equal a real
    /// LRU cache's simulated misses for every (sets, ways) geometry —
    /// the invariant that lets one pass stand in for a bank of caches.
    #[test]
    fn derived_misses_match_simulated_caches(
        ops in prop::collection::vec((0u64..1 << 13, prop::bool::ANY), 1..300),
        block_bits in 4u32..8,
        ways in 1u32..9,
        set_bits in 0u32..5,
    ) {
        let block = 1u64 << block_bits;
        let sets = 1u64 << set_bits;
        let mut prof = StackDistProfiler::new(block, &[sets]);
        let mut cache = Cache::new(CacheConfig::new(
            sets * u64::from(ways) * block,
            ways,
            block,
        ));
        let mut simulated = 0u64;
        for (addr, is_store) in &ops {
            prof.access(*addr);
            if !cache.access(*addr, *is_store).hit {
                simulated += 1;
            }
        }
        prop_assert_eq!(
            prof.misses(sets, ways),
            simulated,
            "profile disagrees with a {}x{} cache ({}B lines)",
            sets,
            ways,
            block
        );
    }
}
