//! Property tests: cache accounting invariants hold for arbitrary access
//! streams, and the prefetch engine's stride detector behaves correctly
//! under aliased (interleaved) miss streams.

use bioperf_cache::{
    AccessKind, Cache, CacheConfig, Hierarchy, LatencyConfig, PrefetchEngine, Prefetcher,
};
use proptest::prelude::*;

fn small_hierarchy() -> Hierarchy {
    Hierarchy::new(
        CacheConfig::new(1024, 2, 64),
        CacheConfig::new(8 * 1024, 1, 64),
        LatencyConfig::alpha21264(),
    )
}

proptest! {
    /// Every L1 miss becomes exactly one L2 access; misses never exceed
    /// accesses at any level.
    #[test]
    fn accounting_is_conserved(ops in prop::collection::vec((0u64..1 << 16, prop::bool::ANY), 1..500)) {
        let mut h = small_hierarchy();
        for (addr, is_store) in &ops {
            let kind = if *is_store { AccessKind::Store } else { AccessKind::Load };
            h.access(*addr, kind);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1.load_misses, s.l2.load_accesses);
        prop_assert_eq!(s.l1.store_misses, s.l2.store_accesses);
        prop_assert!(s.l1.load_misses <= s.l1.load_accesses);
        prop_assert!(s.l2.load_misses <= s.l2.load_accesses);
        let total = ops.len() as u64;
        prop_assert_eq!(s.l1.load_accesses + s.l1.store_accesses, total);
    }

    /// Latency is always one of the three levels' totals, and AMAT is
    /// bounded by them.
    #[test]
    fn latency_is_one_of_three_levels(ops in prop::collection::vec(0u64..1 << 14, 1..300)) {
        let mut h = small_hierarchy();
        let lat = LatencyConfig::alpha21264();
        for addr in &ops {
            let l = h.access(*addr, AccessKind::Load);
            prop_assert!(
                l == lat.total(false, false) || l == lat.total(true, false) || l == lat.total(true, true),
                "unexpected latency {l}"
            );
        }
        let amat = h.amat();
        prop_assert!(amat >= lat.l1 as f64);
        prop_assert!(amat <= (lat.l1 + lat.l2 + lat.memory) as f64);
    }

    /// A block is always resident immediately after a load access.
    #[test]
    fn loads_fill(addrs in prop::collection::vec(0u64..1 << 14, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(512, 2, 64));
        for addr in &addrs {
            c.access(*addr, false);
            prop_assert!(c.probe(*addr), "block 0x{addr:x} not resident after access");
        }
    }

    /// Repeating any access stream twice can only raise the hit count:
    /// the second pass finds whatever survived.
    #[test]
    fn second_pass_never_hurts_total_hits(addrs in prop::collection::vec(0u64..1 << 12, 1..100)) {
        let mut once = small_hierarchy();
        for a in &addrs {
            once.access(*a, AccessKind::Load);
        }
        let misses_once = once.stats().l1.load_misses;

        let mut twice = small_hierarchy();
        for a in addrs.iter().chain(addrs.iter()) {
            twice.access(*a, AccessKind::Load);
        }
        let misses_twice = twice.stats().l1.load_misses;
        prop_assert!(misses_twice <= 2 * misses_once + addrs.len() as u64,
            "second pass should reuse state");
        prop_assert!(misses_twice >= misses_once, "prefix misses are identical");
    }

    /// Writebacks only happen if there was at least one store.
    #[test]
    fn writebacks_require_stores(ops in prop::collection::vec((0u64..1 << 14, prop::bool::ANY), 1..300)) {
        let mut h = small_hierarchy();
        for (addr, is_store) in &ops {
            let kind = if *is_store { AccessKind::Store } else { AccessKind::Load };
            h.access(*addr, kind);
        }
        let s = h.stats();
        if s.l1.store_accesses == 0 {
            prop_assert_eq!(s.l1.writebacks, 0);
        }
    }
}

fn prefetch_cache() -> Cache {
    Cache::new(CacheConfig::new(4096, 2, 64))
}

proptest! {
    /// A constant-stride miss stream keeps exactly one stride of
    /// lookahead resident: from the third miss on the stride is
    /// confirmed, so after every subsequent miss the predicted next
    /// block is in the cache, and each confirmed miss issues exactly one
    /// prefetch.
    #[test]
    fn stride_runs_stay_one_stride_ahead(
        base in 0u64..1 << 40,
        mag in 1i64..1 << 20,
        neg in prop::bool::ANY,
        n in 3usize..40,
    ) {
        let stride = if neg { -mag } else { mag };
        let mut c = prefetch_cache();
        let mut p = PrefetchEngine::new(Prefetcher::Stride, 64);
        let mut addr = base;
        for i in 0..n {
            p.on_miss(addr, &mut c);
            if i >= 2 {
                let target = (addr as i64).wrapping_add(stride) as u64;
                prop_assert!(c.probe(target), "predicted block 0x{target:x} absent at miss {i}");
            }
            addr = (addr as i64).wrapping_add(stride) as u64;
        }
        // The first delta (measured from the detector's zeroed state) can
        // accidentally equal the real stride, confirming one miss early.
        prop_assert!(p.issued >= (n - 2) as u64, "{} issued over {n} misses", p.issued);
        prop_assert!(p.issued <= (n - 1) as u64, "{} issued over {n} misses", p.issued);
        prop_assert!(p.useless <= p.issued);
        prop_assert!((0.0..=1.0).contains(&p.useless_fraction()));
    }

    /// Two interleaved miss streams with different strides alias in the
    /// single global stride detector: consecutive deltas alternate
    /// between two distinct nonzero values, so the stride is never
    /// confirmed twice in a row and no prefetch is ever issued.
    #[test]
    fn interleaved_strides_alias_and_starve_the_detector(
        d1 in 1i64..1 << 16,
        offset in 1i64..1 << 10,
        neg in prop::bool::ANY,
        n in 2usize..60,
    ) {
        let (d1, d2) = if neg { (-d1, -(d1 + offset)) } else { (d1, d1 + offset) };
        let mut c = prefetch_cache();
        let mut p = PrefetchEngine::new(Prefetcher::Stride, 64);
        // Start at d1 + d2 so the very first delta (from the detector's
        // zeroed last address) is d1 + d2, which cannot equal the next
        // delta d1 because d2 is nonzero.
        let mut addr = (d1 + d2) as u64;
        for i in 0..n {
            p.on_miss(addr, &mut c);
            let delta = if i % 2 == 0 { d1 } else { d2 };
            addr = (addr as i64).wrapping_add(delta) as u64;
        }
        prop_assert_eq!(p.issued, 0, "aliased strides must never confirm");
        prop_assert_eq!(p.useless, 0);
        prop_assert_eq!(p.useless_fraction(), 0.0);
    }

    /// Next-line prefetching always leaves the successor block resident
    /// and issues exactly one prefetch per miss.
    #[test]
    fn next_line_always_fills_the_successor(
        addrs in prop::collection::vec(0u64..1 << 20, 1..200),
    ) {
        let mut c = prefetch_cache();
        let mut p = PrefetchEngine::new(Prefetcher::NextLine, 64);
        for (i, &a) in addrs.iter().enumerate() {
            p.on_miss(a, &mut c);
            prop_assert!(c.probe(a + 64), "successor of 0x{a:x} absent");
            prop_assert_eq!(p.issued, (i + 1) as u64);
        }
        prop_assert!(p.useless <= p.issued);
        prop_assert!((0.0..=1.0).contains(&p.useless_fraction()));
    }

    /// The disabled policy issues nothing on any miss stream.
    #[test]
    fn disabled_prefetcher_is_inert(addrs in prop::collection::vec(0u64..1 << 44, 0..200)) {
        let mut c = prefetch_cache();
        let mut p = PrefetchEngine::new(Prefetcher::None, 64);
        for &a in &addrs {
            p.on_miss(a, &mut c);
        }
        prop_assert_eq!(p.issued, 0);
        prop_assert_eq!(p.useless, 0);
        prop_assert_eq!(p.useless_fraction(), 0.0);
    }
}
