//! Property tests: cache accounting invariants hold for arbitrary access
//! streams.

use bioperf_cache::{AccessKind, Cache, CacheConfig, Hierarchy, LatencyConfig};
use proptest::prelude::*;

fn small_hierarchy() -> Hierarchy {
    Hierarchy::new(
        CacheConfig::new(1024, 2, 64),
        CacheConfig::new(8 * 1024, 1, 64),
        LatencyConfig::alpha21264(),
    )
}

proptest! {
    /// Every L1 miss becomes exactly one L2 access; misses never exceed
    /// accesses at any level.
    #[test]
    fn accounting_is_conserved(ops in prop::collection::vec((0u64..1 << 16, prop::bool::ANY), 1..500)) {
        let mut h = small_hierarchy();
        for (addr, is_store) in &ops {
            let kind = if *is_store { AccessKind::Store } else { AccessKind::Load };
            h.access(*addr, kind);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1.load_misses, s.l2.load_accesses);
        prop_assert_eq!(s.l1.store_misses, s.l2.store_accesses);
        prop_assert!(s.l1.load_misses <= s.l1.load_accesses);
        prop_assert!(s.l2.load_misses <= s.l2.load_accesses);
        let total = ops.len() as u64;
        prop_assert_eq!(s.l1.load_accesses + s.l1.store_accesses, total);
    }

    /// Latency is always one of the three levels' totals, and AMAT is
    /// bounded by them.
    #[test]
    fn latency_is_one_of_three_levels(ops in prop::collection::vec(0u64..1 << 14, 1..300)) {
        let mut h = small_hierarchy();
        let lat = LatencyConfig::alpha21264();
        for addr in &ops {
            let l = h.access(*addr, AccessKind::Load);
            prop_assert!(
                l == lat.total(false, false) || l == lat.total(true, false) || l == lat.total(true, true),
                "unexpected latency {l}"
            );
        }
        let amat = h.amat();
        prop_assert!(amat >= lat.l1 as f64);
        prop_assert!(amat <= (lat.l1 + lat.l2 + lat.memory) as f64);
    }

    /// A block is always resident immediately after a load access.
    #[test]
    fn loads_fill(addrs in prop::collection::vec(0u64..1 << 14, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(512, 2, 64));
        for addr in &addrs {
            c.access(*addr, false);
            prop_assert!(c.probe(*addr), "block 0x{addr:x} not resident after access");
        }
    }

    /// Repeating any access stream twice can only raise the hit count:
    /// the second pass finds whatever survived.
    #[test]
    fn second_pass_never_hurts_total_hits(addrs in prop::collection::vec(0u64..1 << 12, 1..100)) {
        let mut once = small_hierarchy();
        for a in &addrs {
            once.access(*a, AccessKind::Load);
        }
        let misses_once = once.stats().l1.load_misses;

        let mut twice = small_hierarchy();
        for a in addrs.iter().chain(addrs.iter()) {
            twice.access(*a, AccessKind::Load);
        }
        let misses_twice = twice.stats().l1.load_misses;
        prop_assert!(misses_twice <= 2 * misses_once + addrs.len() as u64,
            "second pass should reuse state");
        prop_assert!(misses_twice >= misses_once, "prefix misses are identical");
    }

    /// Writebacks only happen if there was at least one store.
    #[test]
    fn writebacks_require_stores(ops in prop::collection::vec((0u64..1 << 14, prop::bool::ANY), 1..300)) {
        let mut h = small_hierarchy();
        for (addr, is_store) in &ops {
            let kind = if *is_store { AccessKind::Store } else { AccessKind::Load };
            h.access(*addr, kind);
        }
        let s = h.stats();
        if s.l1.store_accesses == 0 {
            prop_assert_eq!(s.l1.writebacks, 0);
        }
    }
}
