//! Regression tests for typed rejection of degenerate cache geometries.
//!
//! The design-space sweep enumerates geometries mechanically, so the
//! invalid points it can produce (zero ways, page-sized lines, ragged
//! capacities, non-power-of-two L2 set counts) must come back as
//! `CacheConfigError` values the sweep can report as skipped cells —
//! not as panics that take down a worker mid-wave.

use bioperf_cache::{CacheConfig, CacheConfigError, MAX_BLOCK_BYTES};

#[test]
fn zero_ways_is_typed_error() {
    let err = CacheConfig::try_new(64 * 1024, 0, 64).unwrap_err();
    assert_eq!(
        err,
        CacheConfigError::ZeroGeometry { size_bytes: 64 * 1024, ways: 0, block_bytes: 64 }
    );
    assert!(err.to_string().contains("zero-sized cache"), "got: {err}");
}

#[test]
fn zero_size_and_zero_block_are_typed_errors() {
    assert!(matches!(
        CacheConfig::try_new(0, 2, 64),
        Err(CacheConfigError::ZeroGeometry { size_bytes: 0, .. })
    ));
    assert!(matches!(
        CacheConfig::try_new(1024, 2, 0),
        Err(CacheConfigError::ZeroGeometry { block_bytes: 0, .. })
    ));
}

#[test]
fn non_pow2_block_is_typed_error() {
    let err = CacheConfig::try_new(1024, 2, 48).unwrap_err();
    assert_eq!(err, CacheConfigError::BlockNotPowerOfTwo { block_bytes: 48 });
    assert!(err.to_string().contains("power of two"), "got: {err}");
}

#[test]
fn block_over_4kb_is_typed_error() {
    // 8 KB lines: a power of two, divides the capacity evenly — rejected
    // purely by the MAX_BLOCK_BYTES cap.
    let block = 2 * MAX_BLOCK_BYTES;
    let err = CacheConfig::try_new(64 * block, 2, block).unwrap_err();
    assert_eq!(err, CacheConfigError::BlockTooLarge { block_bytes: block });
    assert!(err.to_string().contains("at most 4096 B"), "got: {err}");
}

#[test]
fn block_at_exactly_4kb_is_accepted() {
    let cfg = CacheConfig::try_new(64 * MAX_BLOCK_BYTES, 2, MAX_BLOCK_BYTES).unwrap();
    assert_eq!(cfg.num_sets(), 32);
}

#[test]
fn ragged_capacity_is_typed_error() {
    let err = CacheConfig::try_new(1000, 2, 64).unwrap_err();
    assert_eq!(err, CacheConfigError::RaggedCapacity { size_bytes: 1000, ways: 2, block_bytes: 64 });
    assert!(err.to_string().contains("whole number of sets"), "got: {err}");
}

#[test]
fn pow2_sets_requirement_is_opt_in() {
    // Three sets is a legal geometry in general (divide/modulo indexing),
    // but callers that require power-of-two indexing — the sweep's L2
    // axis — get a typed rejection from require_pow2_sets.
    let cfg = CacheConfig::try_new(3 * 2 * 64, 2, 64).unwrap();
    assert_eq!(cfg.num_sets(), 3);
    let err = cfg.require_pow2_sets().unwrap_err();
    assert_eq!(err, CacheConfigError::SetsNotPowerOfTwo { sets: 3 });
    assert!(err.to_string().contains("power of two"), "got: {err}");

    let ok = CacheConfig::try_new(4 * 2 * 64, 2, 64).unwrap();
    assert!(ok.require_pow2_sets().is_ok());
}

#[test]
fn new_still_panics_with_stable_messages() {
    // The panicking constructor keeps its message contract: downstream
    // code (and the cache crate's own should_panic tests) match on these
    // substrings.
    let err = std::panic::catch_unwind(|| CacheConfig::new(1024, 2, 48)).unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("power of two"), "got: {msg}");
}
