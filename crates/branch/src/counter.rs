//! Saturating two-bit counters, the building block of every component.

/// A two-bit saturating counter in the classic four-state scheme:
/// 0 = strongly not-taken, 1 = weakly not-taken, 2 = weakly taken,
/// 3 = strongly taken.
///
/// # Example
///
/// ```
/// use bioperf_branch::SatCounter;
///
/// let mut c = SatCounter::weakly_not_taken();
/// assert!(!c.predict());
/// c.train(true);
/// assert!(c.predict());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter(u8);

impl SatCounter {
    /// Starts in state 1 (weakly not-taken), the usual cold state.
    pub const fn weakly_not_taken() -> Self {
        Self(1)
    }

    /// Starts in state 2 (weakly taken).
    pub const fn weakly_taken() -> Self {
        Self(2)
    }

    /// Current prediction: taken iff the counter is in the upper half.
    #[inline]
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward the observed outcome.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }

    /// Raw state (0..=3), exposed for tests and debugging.
    pub fn state(self) -> u8 {
        self.0
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        Self::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SatCounter::weakly_not_taken();
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.state(), 0);
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.state(), 3);
    }

    #[test]
    fn hysteresis_needs_two_flips_from_strong() {
        let mut c = SatCounter::weakly_taken();
        c.train(true); // strongly taken
        c.train(false);
        assert!(c.predict(), "one not-taken must not flip a strong state");
        c.train(false);
        assert!(!c.predict());
    }

    #[test]
    fn default_is_weakly_not_taken() {
        assert_eq!(SatCounter::default(), SatCounter::weakly_not_taken());
        assert!(!SatCounter::default().predict());
    }

    #[test]
    fn single_taken_flips_weak_state() {
        let mut c = SatCounter::weakly_not_taken();
        c.train(true);
        assert!(c.predict());
    }
}
