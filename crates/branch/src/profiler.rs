//! Per-static-branch misprediction profiling.

use bioperf_isa::{MicroOp, Program, StaticId};
use bioperf_trace::TraceConsumer;

use crate::predictor::Hybrid;

/// Execution and misprediction counts for one static branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Dynamic executions.
    pub executions: u64,
    /// Dynamic mispredictions under the profiling predictor.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction rate (0 for never-executed branches).
    pub fn misprediction_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.executions as f64
        }
    }
}

/// Profiles every static conditional branch with a private [`Hybrid`]
/// predictor and a shared global-history register — the paper's
/// no-aliasing measurement predictor.
///
/// Use it directly via [`observe`](BranchProfiler::observe) (the
/// dependence-sequence detector does this so it can see per-dynamic-branch
/// correctness), or plug it into a tape as a [`TraceConsumer`].
///
/// # Example
///
/// ```
/// use bioperf_branch::BranchProfiler;
/// use bioperf_isa::StaticId;
///
/// let mut prof = BranchProfiler::new();
/// let b = StaticId::from_raw(0);
/// for i in 0..100u64 {
///     prof.observe(b, i % 7 == 0); // biased branch
/// }
/// assert!(prof.stats(b).misprediction_rate() < 0.5);
/// assert_eq!(prof.stats(b).executions, 100);
/// ```
#[derive(Debug, Clone)]
pub struct BranchProfiler {
    history_bits: u32,
    global_history: u64,
    predictors: Vec<Option<Box<Hybrid>>>,
    stats: Vec<BranchStats>,
}

impl Default for BranchProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchProfiler {
    /// Default history length used by the study's measurements.
    pub const DEFAULT_HISTORY_BITS: u32 = 10;

    /// Creates a profiler with the default history length.
    pub fn new() -> Self {
        Self::with_history_bits(Self::DEFAULT_HISTORY_BITS)
    }

    /// Creates a profiler whose per-branch history components have
    /// `2^bits` entries.
    pub fn with_history_bits(bits: u32) -> Self {
        Self { history_bits: bits, global_history: 0, predictors: Vec::new(), stats: Vec::new() }
    }

    /// Observes one dynamic branch: predicts, updates, records stats, and
    /// returns whether the prediction was *correct*.
    pub fn observe(&mut self, sid: StaticId, taken: bool) -> bool {
        let idx = sid.index();
        if idx >= self.predictors.len() {
            self.predictors.resize_with(idx + 1, || None);
            self.stats.resize(idx + 1, BranchStats::default());
        }
        let bits = self.history_bits;
        let predictor =
            self.predictors[idx].get_or_insert_with(|| Box::new(Hybrid::new(bits)));
        let correct = predictor.predict_and_update(self.global_history, taken);
        self.global_history = (self.global_history << 1) | taken as u64;
        let s = &mut self.stats[idx];
        s.executions += 1;
        if !correct {
            s.mispredictions += 1;
        }
        correct
    }

    /// Statistics for one static branch (zeros if never executed).
    pub fn stats(&self, sid: StaticId) -> BranchStats {
        self.stats.get(sid.index()).copied().unwrap_or_default()
    }

    /// Running misprediction rate of one static branch.
    pub fn misprediction_rate(&self, sid: StaticId) -> f64 {
        self.stats(sid).misprediction_rate()
    }

    /// Whether the branch qualifies as hard to predict under the paper's
    /// ≥ 5% threshold (false until it has executed at least once).
    pub fn is_hard_to_predict(&self, sid: StaticId) -> bool {
        let s = self.stats(sid);
        s.executions > 0 && s.misprediction_rate() >= crate::HARD_TO_PREDICT_THRESHOLD
    }

    /// Total dynamic branches observed.
    pub fn total_executions(&self) -> u64 {
        self.stats.iter().map(|s| s.executions).sum()
    }

    /// Total dynamic mispredictions observed.
    pub fn total_mispredictions(&self) -> u64 {
        self.stats.iter().map(|s| s.mispredictions).sum()
    }

    /// Overall dynamic misprediction rate.
    pub fn overall_misprediction_rate(&self) -> f64 {
        let execs = self.total_executions();
        if execs == 0 {
            0.0
        } else {
            self.total_mispredictions() as f64 / execs as f64
        }
    }

    /// Iterates over `(StaticId, BranchStats)` for every branch that
    /// executed at least once.
    pub fn iter(&self) -> impl Iterator<Item = (StaticId, BranchStats)> + '_ {
        self.stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.executions > 0)
            .map(|(i, s)| (StaticId::from_raw(i as u32), *s))
    }
}

impl TraceConsumer for BranchProfiler {
    fn consume(&mut self, op: &MicroOp, _program: &Program) {
        if op.kind.is_cond_branch() {
            self.observe(op.sid, op.taken);
        }
    }

    fn consume_block(&mut self, block: &bioperf_trace::OpBlock, _program: &Program) {
        // The block decoder pre-filters conditional branches into parallel
        // (sid, taken) columns — same predicate as `consume` — so the
        // profiler walks only branch ops without testing kinds.
        for (&sid, &taken) in block.branch_sids().iter().zip(block.branch_taken()) {
            self.observe(sid, taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    #[test]
    fn per_branch_isolation() {
        // Two branches with opposite biases must not interfere (the
        // paper's no-aliasing property).
        let mut p = BranchProfiler::new();
        for _ in 0..500 {
            p.observe(sid(0), true);
            p.observe(sid(1), false);
        }
        assert!(p.misprediction_rate(sid(0)) < 0.02);
        assert!(p.misprediction_rate(sid(1)) < 0.02);
    }

    #[test]
    fn hard_to_predict_threshold() {
        let mut p = BranchProfiler::new();
        let mut state = 99u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.observe(sid(0), (state >> 40) & 1 == 1);
        }
        assert!(p.is_hard_to_predict(sid(0)));
        assert!(!p.is_hard_to_predict(sid(1)), "never-executed branch is not hard");
    }

    #[test]
    fn totals_aggregate_over_branches() {
        let mut p = BranchProfiler::new();
        for i in 0..10u64 {
            p.observe(sid((i % 3) as u32), i % 2 == 0);
        }
        assert_eq!(p.total_executions(), 10);
        assert_eq!(
            p.total_mispredictions(),
            p.iter().map(|(_, s)| s.mispredictions).sum::<u64>()
        );
    }

    #[test]
    fn iter_skips_unexecuted() {
        let mut p = BranchProfiler::new();
        p.observe(sid(5), true);
        let seen: Vec<_> = p.iter().map(|(id, _)| id).collect();
        assert_eq!(seen, vec![sid(5)]);
    }

    #[test]
    fn correlated_branches_benefit_from_global_history() {
        // Branch B always equals the outcome of branch A: global history
        // makes B nearly perfectly predictable even though B alone looks
        // random.
        let mut p = BranchProfiler::new();
        let mut state = 7u64;
        let mut b_wrong_tail = 0u64;
        let n = 4000;
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 40) & 1 == 1;
            p.observe(sid(0), a);
            let before = p.stats(sid(1)).mispredictions;
            p.observe(sid(1), a);
            if i >= n / 2 {
                b_wrong_tail += p.stats(sid(1)).mispredictions - before;
            }
        }
        let tail_rate = b_wrong_tail as f64 / (n / 2) as f64;
        assert!(tail_rate < 0.25, "correlated branch tail rate {tail_rate}");
    }
}
