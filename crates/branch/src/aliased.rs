//! A realistic *aliased* hybrid predictor, for contrast with the paper's
//! idealized per-static-branch measurement predictor.
//!
//! The paper measures misprediction rates with "an entry for each static
//! branch (i.e., there is no aliasing)". Real front ends index shared
//! tables by PC and history, so unrelated branches collide. This module
//! provides that realistic variant — a classic McFarling combination of
//! a PC-indexed bimodal table, a gshare table indexed by PC⊕history, and
//! a PC-indexed chooser — so the ablation harness can quantify how much
//! the no-aliasing idealization flatters (or barely affects) Table 4.

use bioperf_isa::StaticId;

use crate::counter::SatCounter;

/// A shared-table bimodal + gshare + chooser predictor.
///
/// # Example
///
/// ```
/// use bioperf_branch::aliased::AliasedHybrid;
/// use bioperf_isa::StaticId;
///
/// let mut p = AliasedHybrid::new(12);
/// let b = StaticId::from_raw(3);
/// let mut wrong = 0;
/// for _ in 0..1000 {
///     if !p.observe(b, true) {
///         wrong += 1;
///     }
/// }
/// assert!(wrong < 5, "constant branch converges: {wrong}");
/// ```
#[derive(Debug, Clone)]
pub struct AliasedHybrid {
    bimodal: Vec<SatCounter>,
    gshare: Vec<SatCounter>,
    chooser: Vec<SatCounter>,
    mask: u64,
    history: u64,
    executions: u64,
    mispredictions: u64,
}

impl AliasedHybrid {
    /// Creates shared tables of `2^bits` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 24.
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 24, "table too large ({bits} bits)");
        let size = 1usize << bits;
        Self {
            bimodal: vec![SatCounter::weakly_not_taken(); size],
            gshare: vec![SatCounter::weakly_not_taken(); size],
            chooser: vec![SatCounter::weakly_not_taken(); size],
            mask: (size - 1) as u64,
            history: 0,
            executions: 0,
            mispredictions: 0,
        }
    }

    fn pc_hash(sid: StaticId) -> u64 {
        // Spread dense static ids the way instruction addresses spread.
        (sid.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Predicts, updates, and records stats; returns whether the
    /// prediction was correct.
    pub fn observe(&mut self, sid: StaticId, taken: bool) -> bool {
        let pc = Self::pc_hash(sid);
        let bi_idx = (pc & self.mask) as usize;
        let gs_idx = ((pc ^ self.history) & self.mask) as usize;

        let bi = self.bimodal[bi_idx].predict();
        let gs = self.gshare[gs_idx].predict();
        let prediction = if self.chooser[bi_idx].predict() { gs } else { bi };

        if bi != gs {
            self.chooser[bi_idx].train(gs == taken);
        }
        self.bimodal[bi_idx].train(taken);
        self.gshare[gs_idx].train(taken);
        self.history = (self.history << 1) | taken as u64;

        self.executions += 1;
        let correct = prediction == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Dynamic branches observed.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Overall misprediction rate.
    pub fn misprediction_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.executions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    #[test]
    fn biased_branches_converge_despite_sharing() {
        let mut p = AliasedHybrid::new(14);
        for i in 0..2000u64 {
            p.observe(sid((i % 4) as u32), true);
        }
        assert!(p.misprediction_rate() < 0.01, "{}", p.misprediction_rate());
    }

    #[test]
    fn aliasing_hurts_with_tiny_tables() {
        // Two constant but opposite branches forced into single-entry
        // tables collide destructively; the no-aliasing profiler learns
        // both perfectly. Outcomes are decided by a PRNG so neither
        // predictor can exploit a global repeating pattern beyond the
        // per-branch bias.
        let mut tiny = AliasedHybrid::new(0);
        let mut ideal = crate::BranchProfiler::new();
        let mut state = 1u64;
        for _ in 0..4000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((state >> 40) % 2) as u32;
            let taken = b == 0;
            tiny.observe(sid(b), taken);
            ideal.observe(sid(b), taken);
        }
        assert!(
            tiny.misprediction_rate() > ideal.overall_misprediction_rate() + 0.05,
            "tiny {} vs ideal {}",
            tiny.misprediction_rate(),
            ideal.overall_misprediction_rate()
        );
    }

    #[test]
    fn random_branches_stay_hard() {
        let mut p = AliasedHybrid::new(14);
        let mut state = 9u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.observe(sid(0), (state >> 40) & 1 == 1);
        }
        assert!(p.misprediction_rate() > 0.3);
    }

    #[test]
    fn stats_accounting() {
        let mut p = AliasedHybrid::new(8);
        for i in 0..100u64 {
            p.observe(sid(0), i % 3 == 0);
        }
        assert_eq!(p.executions(), 100);
        assert!((0.0..=1.0).contains(&p.misprediction_rate()));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_tables_rejected() {
        AliasedHybrid::new(25);
    }
}
