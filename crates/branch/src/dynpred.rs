//! A runtime-selectable predictor for design-space sweeps.
//!
//! The cycle simulator is hard-wired to the paper's measurement predictor
//! (a private [`Hybrid`](crate::Hybrid) per static branch). The sweep
//! wants the predictor *family* to be a grid axis, so this module wraps
//! the three families the crate models behind one observe interface:
//! the idealized no-aliasing hybrid, the realistic shared-table
//! [`AliasedHybrid`], and a plain per-branch bimodal floor.

use bioperf_isa::StaticId;

use crate::counter::SatCounter;
use crate::{AliasedHybrid, BranchProfiler};

/// Predictor family selector — one sweep-grid axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// The paper's idealized hybrid: a private predictor per static
    /// branch (no aliasing), shared global history.
    Hybrid,
    /// A realistic shared-table bimodal + gshare + chooser (aliasing
    /// across branches).
    Aliased,
    /// A per-branch two-bit bimodal counter — the bias-only floor.
    Bimodal,
}

impl PredictorKind {
    /// Every family, in the fixed enumeration order sweeps use.
    pub const ALL: [PredictorKind; 3] =
        [PredictorKind::Hybrid, PredictorKind::Aliased, PredictorKind::Bimodal];

    /// Stable lowercase name used in CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Hybrid => "hybrid",
            PredictorKind::Aliased => "aliased",
            PredictorKind::Bimodal => "bimodal",
        }
    }

    /// Parses a [`name`](Self::name) back to the family.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A predictor of any [`PredictorKind`] behind one observe interface.
///
/// # Example
///
/// ```
/// use bioperf_branch::{DynPredictor, PredictorKind};
/// use bioperf_isa::StaticId;
///
/// let mut p = DynPredictor::new(PredictorKind::Bimodal);
/// let b = StaticId::from_raw(0);
/// for _ in 0..8 {
///     p.observe(b, true);
/// }
/// assert!(p.observe(b, true), "biased branch learned");
/// ```
#[derive(Debug, Clone)]
pub enum DynPredictor {
    /// Idealized per-static-branch hybrid.
    Hybrid(BranchProfiler),
    /// Shared-table realistic hybrid.
    Aliased(Box<AliasedHybrid>),
    /// Per-static-branch bimodal counters (grown on demand).
    Bimodal(Vec<SatCounter>),
}

impl DynPredictor {
    /// Shared-table size for the aliased family: 2^12 entries per table,
    /// a mid-range front-end budget.
    pub const ALIASED_TABLE_BITS: u32 = 12;

    /// Creates a cold predictor of the given family.
    pub fn new(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::Hybrid => DynPredictor::Hybrid(BranchProfiler::new()),
            PredictorKind::Aliased => {
                DynPredictor::Aliased(Box::new(AliasedHybrid::new(Self::ALIASED_TABLE_BITS)))
            }
            PredictorKind::Bimodal => DynPredictor::Bimodal(Vec::new()),
        }
    }

    /// Which family this predictor belongs to.
    pub fn kind(&self) -> PredictorKind {
        match self {
            DynPredictor::Hybrid(_) => PredictorKind::Hybrid,
            DynPredictor::Aliased(_) => PredictorKind::Aliased,
            DynPredictor::Bimodal(_) => PredictorKind::Bimodal,
        }
    }

    /// Observes one dynamic branch: predicts, updates, and returns
    /// whether the prediction was *correct* — the same contract as
    /// [`BranchProfiler::observe`].
    pub fn observe(&mut self, sid: StaticId, taken: bool) -> bool {
        match self {
            DynPredictor::Hybrid(p) => p.observe(sid, taken),
            DynPredictor::Aliased(p) => p.observe(sid, taken),
            DynPredictor::Bimodal(counters) => {
                let idx = sid.index();
                if idx >= counters.len() {
                    counters.resize(idx + 1, SatCounter::weakly_not_taken());
                }
                let correct = counters[idx].predict() == taken;
                counters[idx].train(taken);
                correct
            }
        }
    }
}

impl Default for DynPredictor {
    fn default() -> Self {
        Self::new(PredictorKind::Hybrid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> StaticId {
        StaticId::from_raw(n)
    }

    #[test]
    fn names_round_trip() {
        for kind in PredictorKind::ALL {
            assert_eq!(PredictorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(PredictorKind::from_name("gshare"), None);
    }

    #[test]
    fn hybrid_variant_matches_profiler() {
        // The sweep's default family must reproduce the simulator's
        // hard-wired profiler exactly, outcome for outcome.
        let mut dyn_p = DynPredictor::new(PredictorKind::Hybrid);
        let mut prof = BranchProfiler::new();
        let mut state = 3u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = sid(((state >> 33) % 5) as u32);
            let taken = (state >> 40) & 3 != 0;
            assert_eq!(dyn_p.observe(b, taken), prof.observe(b, taken));
        }
    }

    #[test]
    fn bimodal_learns_bias_but_not_patterns() {
        let mut p = DynPredictor::new(PredictorKind::Bimodal);
        let mut wrong = 0;
        for i in 0..1000u64 {
            // Period-2 pattern: bimodal hovers near chance.
            if !p.observe(sid(0), i % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong > 300, "bimodal should not learn period-2: {wrong} wrong");

        let mut q = DynPredictor::new(PredictorKind::Bimodal);
        let mut wrong = 0;
        for _ in 0..1000u64 {
            if !q.observe(sid(1), true) {
                wrong += 1;
            }
        }
        assert!(wrong < 5, "bimodal must learn constant bias: {wrong} wrong");
    }

    #[test]
    fn families_disagree_on_patterned_branch() {
        // Period-4 TTNN: hybrid learns it, bimodal cannot — the sweep
        // axis is only meaningful if families actually differ.
        let pattern = [true, true, false, false];
        let mut hybrid_wrong = 0;
        let mut bimodal_wrong = 0;
        let mut h = DynPredictor::new(PredictorKind::Hybrid);
        let mut b = DynPredictor::new(PredictorKind::Bimodal);
        for i in 0..2000usize {
            let taken = pattern[i % 4];
            if !h.observe(sid(0), taken) {
                hybrid_wrong += 1;
            }
            if !b.observe(sid(0), taken) {
                bimodal_wrong += 1;
            }
        }
        assert!(hybrid_wrong * 4 < bimodal_wrong, "hybrid {hybrid_wrong} vs bimodal {bimodal_wrong}");
    }
}
