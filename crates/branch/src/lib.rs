//! Branch prediction for the BioPerf load-characterization study.
//!
//! The paper measures branch misprediction rates with "a hybrid branch
//! predictor with an entry for each static branch (i.e., there is no
//! aliasing)". This crate reimplements that measurement setup: every
//! static conditional branch owns a private [`Hybrid`] predictor (a
//! bimodal component, a global-history-indexed component, and a chooser),
//! and the [`BranchProfiler`] tracks per-branch execution and
//! misprediction counts — the inputs to the paper's Table 4 and Table 5.
//!
//! # Example
//!
//! ```
//! use bioperf_branch::Hybrid;
//!
//! let mut p = Hybrid::new(10);
//! let mut history = 0u64;
//! let mut wrong = 0;
//! for i in 0..1000u64 {
//!     let taken = i % 2 == 0; // perfectly periodic: history component learns it
//!     if p.predict(history) != taken {
//!         wrong += 1;
//!     }
//!     p.update(history, taken);
//!     history = (history << 1) | taken as u64;
//! }
//! assert!(wrong < 20, "alternating pattern should be learned, {wrong} wrong");
//! ```

pub mod aliased;
pub mod counter;
pub mod dynpred;
pub mod inject;
pub mod predictor;
pub mod profiler;

pub use aliased::AliasedHybrid;
pub use counter::SatCounter;
pub use dynpred::{DynPredictor, PredictorKind};
pub use predictor::{Bimodal, HistoryTable, Hybrid};
pub use profiler::{BranchProfiler, BranchStats};

/// The paper's threshold for a "hard-to-predict" branch (Table 4b counts
/// loads after branches with a misprediction rate of 5% or higher).
pub const HARD_TO_PREDICT_THRESHOLD: f64 = 0.05;
