//! Predictor components and the per-branch hybrid.

use crate::counter::SatCounter;

/// A single-counter bimodal predictor: learns a branch's bias.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bimodal {
    counter: SatCounter,
}

impl Bimodal {
    /// Creates a cold (weakly not-taken) bimodal predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted direction.
    #[inline]
    pub fn predict(&self) -> bool {
        self.counter.predict()
    }

    /// Trains on the observed outcome.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        self.counter.train(taken);
    }
}

/// A global-history-indexed table of two-bit counters.
///
/// Because the study gives every static branch a *private* table (no
/// aliasing), no PC hashing is required; the table is indexed purely by
/// the low `bits` of the global history register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryTable {
    counters: Vec<SatCounter>,
    mask: u64,
}

impl HistoryTable {
    /// Creates a table with `2^bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds 20 (tables beyond a megaentry per branch
    /// are a configuration error).
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 20, "history table too large ({bits} bits)");
        let size = 1usize << bits;
        Self { counters: vec![SatCounter::weakly_not_taken(); size], mask: (size - 1) as u64 }
    }

    /// Predicted direction under the given global history.
    #[inline]
    pub fn predict(&self, history: u64) -> bool {
        self.counters[(history & self.mask) as usize].predict()
    }

    /// Trains the counter selected by `history`.
    #[inline]
    pub fn update(&mut self, history: u64, taken: bool) {
        self.counters[(history & self.mask) as usize].train(taken);
    }
}

/// The per-static-branch hybrid predictor: bimodal + history-indexed
/// component + chooser, as in the paper's measurement methodology.
///
/// The chooser trains toward whichever component was correct when they
/// disagree (McFarling-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hybrid {
    bimodal: Bimodal,
    history: HistoryTable,
    chooser: SatCounter,
}

impl Hybrid {
    /// Creates a hybrid with a `2^history_bits`-entry history component.
    pub fn new(history_bits: u32) -> Self {
        Self {
            bimodal: Bimodal::new(),
            history: HistoryTable::new(history_bits),
            // Start preferring the bimodal component: the history table is
            // cold and noisy early on.
            chooser: SatCounter::weakly_not_taken(),
        }
    }

    /// Predicted direction under the given global history.
    ///
    /// Chooser state ≥ 2 selects the history component.
    #[inline]
    pub fn predict(&self, history: u64) -> bool {
        if self.chooser.predict() {
            self.history.predict(history)
        } else {
            self.bimodal.predict()
        }
    }

    /// Trains all components on the observed outcome.
    #[inline]
    pub fn update(&mut self, history: u64, taken: bool) {
        let bi = self.bimodal.predict();
        let hi = self.history.predict(history);
        if bi != hi && !crate::inject::active(crate::inject::CHOOSER_STALE) {
            // Train the chooser toward the correct component.
            self.chooser.train(hi == taken);
        }
        self.bimodal.update(taken);
        self.history.update(history, taken);
    }

    /// Predicts, updates, and reports whether the prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, history: u64, taken: bool) -> bool {
        let pred = self.predict(history);
        self.update(history, taken);
        pred == taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut b = Bimodal::new();
        for _ in 0..4 {
            b.update(true);
        }
        assert!(b.predict());
    }

    #[test]
    fn history_table_learns_period_two() {
        let mut t = HistoryTable::new(4);
        let mut h = 0u64;
        let mut wrong = 0;
        for i in 0..200u64 {
            let taken = i % 2 == 0;
            if t.predict(h) != taken {
                wrong += 1;
            }
            t.update(h, taken);
            h = (h << 1) | taken as u64;
        }
        assert!(wrong < 10, "{wrong} mispredicts on period-2 pattern");
    }

    #[test]
    fn hybrid_beats_bimodal_on_patterned_branch() {
        // Period-4 pattern TTNN: bimodal is ~50%, history component ~100%.
        let pattern = [true, true, false, false];
        let mut hybrid = Hybrid::new(8);
        let mut bimodal = Bimodal::new();
        let mut h = 0u64;
        let (mut hybrid_wrong, mut bimodal_wrong) = (0, 0);
        for i in 0..1000usize {
            let taken = pattern[i % 4];
            if hybrid.predict(h) != taken {
                hybrid_wrong += 1;
            }
            if bimodal.predict() != taken {
                bimodal_wrong += 1;
            }
            hybrid.update(h, taken);
            bimodal.update(taken);
            h = (h << 1) | taken as u64;
        }
        assert!(hybrid_wrong < bimodal_wrong / 4, "hybrid {hybrid_wrong} vs bimodal {bimodal_wrong}");
    }

    #[test]
    fn hybrid_matches_bimodal_on_biased_branch() {
        let mut hybrid = Hybrid::new(8);
        let mut h = 0u64;
        let mut wrong = 0;
        for _ in 0..500 {
            if !hybrid.predict(h) {
                wrong += 1;
            }
            hybrid.update(h, true);
            h = (h << 1) | 1;
        }
        assert!(wrong <= 2, "always-taken branch: {wrong} wrong");
    }

    #[test]
    fn predict_and_update_reports_correctness() {
        let mut p = Hybrid::new(4);
        // Cold predictor says not-taken; feed taken.
        assert!(!p.predict_and_update(0, true));
        // After warmup it should predict taken.
        for _ in 0..4 {
            p.predict_and_update(0, true);
        }
        assert!(p.predict_and_update(0, true));
    }

    #[test]
    fn random_branch_mispredicts_often() {
        // A pseudo-random branch should stay hard to predict — this is the
        // paper's hard-to-predict case (Table 4a rates of 6-20%).
        let mut p = Hybrid::new(10);
        let mut h = 0u64;
        let mut state = 0x12345678u64;
        let mut wrong = 0;
        let n = 10_000;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let taken = (state >> 33) & 1 == 1;
            if !p.predict_and_update(h, taken) {
                wrong += 1;
            }
            h = (h << 1) | taken as u64;
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate > 0.3, "random branch mispredict rate {rate} suspiciously low");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_history_table_rejected() {
        HistoryTable::new(21);
    }
}
