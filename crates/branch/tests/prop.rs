//! Property tests: predictor statistics stay consistent for arbitrary
//! branch streams.

use bioperf_branch::{BranchProfiler, Hybrid, SatCounter};
use bioperf_isa::StaticId;
use proptest::prelude::*;

proptest! {
    /// Counter state is always one of the four saturating states.
    #[test]
    fn counter_stays_in_range(outcomes in prop::collection::vec(prop::bool::ANY, 0..200)) {
        let mut c = SatCounter::weakly_not_taken();
        for &o in &outcomes {
            c.train(o);
            prop_assert!(c.state() <= 3);
        }
    }

    /// Totals equal the per-branch sums; rates are probabilities.
    #[test]
    fn profiler_totals_are_consistent(
        stream in prop::collection::vec((0u32..8, prop::bool::ANY), 1..500)
    ) {
        let mut p = BranchProfiler::new();
        for &(b, taken) in &stream {
            p.observe(StaticId::from_raw(b), taken);
        }
        prop_assert_eq!(p.total_executions(), stream.len() as u64);
        let per_branch: u64 = p.iter().map(|(_, s)| s.executions).sum();
        prop_assert_eq!(per_branch, stream.len() as u64);
        prop_assert!(p.total_mispredictions() <= p.total_executions());
        let rate = p.overall_misprediction_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        for (_, s) in p.iter() {
            prop_assert!((0.0..=1.0).contains(&s.misprediction_rate()));
        }
    }

    /// A constant branch is eventually always predicted correctly: at
    /// most a handful of warmup mispredictions regardless of direction.
    #[test]
    fn constant_branches_converge(direction in prop::bool::ANY, n in 50usize..400) {
        let mut p = Hybrid::new(8);
        let mut wrong = 0;
        let mut h = 0u64;
        for _ in 0..n {
            if !p.predict_and_update(h, direction) {
                wrong += 1;
            }
            h = (h << 1) | direction as u64;
        }
        prop_assert!(wrong <= 4, "{wrong} mispredicts on a constant branch");
    }

    /// Prediction is a pure function of state: predicting twice without
    /// an update gives the same answer.
    #[test]
    fn predict_is_pure(history in any::<u64>(), warmup in prop::collection::vec(prop::bool::ANY, 0..50)) {
        let mut p = Hybrid::new(6);
        let mut h = 0u64;
        for &o in &warmup {
            p.update(h, o);
            h = (h << 1) | o as u64;
        }
        prop_assert_eq!(p.predict(history), p.predict(history));
    }
}
