//! Property tests: predictor statistics stay consistent for arbitrary
//! branch streams, and the shared-table [`AliasedHybrid`] handles
//! index aliasing under adversarial PC streams correctly.

use bioperf_branch::{AliasedHybrid, BranchProfiler, Hybrid, SatCounter};
use bioperf_isa::StaticId;
use proptest::prelude::*;

proptest! {
    /// Counter state is always one of the four saturating states.
    #[test]
    fn counter_stays_in_range(outcomes in prop::collection::vec(prop::bool::ANY, 0..200)) {
        let mut c = SatCounter::weakly_not_taken();
        for &o in &outcomes {
            c.train(o);
            prop_assert!(c.state() <= 3);
        }
    }

    /// Totals equal the per-branch sums; rates are probabilities.
    #[test]
    fn profiler_totals_are_consistent(
        stream in prop::collection::vec((0u32..8, prop::bool::ANY), 1..500)
    ) {
        let mut p = BranchProfiler::new();
        for &(b, taken) in &stream {
            p.observe(StaticId::from_raw(b), taken);
        }
        prop_assert_eq!(p.total_executions(), stream.len() as u64);
        let per_branch: u64 = p.iter().map(|(_, s)| s.executions).sum();
        prop_assert_eq!(per_branch, stream.len() as u64);
        prop_assert!(p.total_mispredictions() <= p.total_executions());
        let rate = p.overall_misprediction_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        for (_, s) in p.iter() {
            prop_assert!((0.0..=1.0).contains(&s.misprediction_rate()));
        }
    }

    /// A constant branch is eventually always predicted correctly: at
    /// most a handful of warmup mispredictions regardless of direction.
    #[test]
    fn constant_branches_converge(direction in prop::bool::ANY, n in 50usize..400) {
        let mut p = Hybrid::new(8);
        let mut wrong = 0;
        let mut h = 0u64;
        for _ in 0..n {
            if !p.predict_and_update(h, direction) {
                wrong += 1;
            }
            h = (h << 1) | direction as u64;
        }
        prop_assert!(wrong <= 4, "{wrong} mispredicts on a constant branch");
    }

    /// Prediction is a pure function of state: predicting twice without
    /// an update gives the same answer.
    #[test]
    fn predict_is_pure(history in any::<u64>(), warmup in prop::collection::vec(prop::bool::ANY, 0..50)) {
        let mut p = Hybrid::new(6);
        let mut h = 0u64;
        for &o in &warmup {
            p.update(h, o);
            h = (h << 1) | o as u64;
        }
        prop_assert_eq!(p.predict(history), p.predict(history));
    }
}

proptest! {
    /// Stats account for every observed branch, whatever the aliasing.
    #[test]
    fn aliased_stats_account_every_branch(
        bits in 0u32..12,
        stream in prop::collection::vec((0u32..1 << 16, prop::bool::ANY), 0..400),
    ) {
        let mut p = AliasedHybrid::new(bits);
        for &(b, taken) in &stream {
            p.observe(StaticId::from_raw(b), taken);
        }
        prop_assert_eq!(p.executions(), stream.len() as u64);
        prop_assert!((0.0..=1.0).contains(&p.misprediction_rate()));
    }

    /// With zero-bit (single-entry) tables every PC aliases onto the same
    /// entry, so the predictor must be completely PC-blind: replacing all
    /// static ids with a single id cannot change a single prediction.
    #[test]
    fn fully_aliased_tables_are_pc_blind(
        stream in prop::collection::vec((0u32..1 << 16, prop::bool::ANY), 1..300),
    ) {
        let mut varied = AliasedHybrid::new(0);
        let mut collapsed = AliasedHybrid::new(0);
        for &(b, taken) in &stream {
            let a = varied.observe(StaticId::from_raw(b), taken);
            let c = collapsed.observe(StaticId::from_raw(0), taken);
            prop_assert_eq!(a, c, "0-bit tables must ignore the PC");
        }
        prop_assert_eq!(varied.misprediction_rate(), collapsed.misprediction_rate());
    }

    /// The tables are indexed by `pc_hash(sid) & mask` with an odd
    /// multiplicative hash, so static ids congruent modulo the table size
    /// alias onto identical bimodal, gshare, and chooser entries: the
    /// predictor cannot tell such a stream from the same stream on a
    /// single id.
    #[test]
    fn congruent_ids_alias_onto_the_same_entries(
        bits in 0u32..8,
        s in 0u32..1 << 8,
        multiples in prop::collection::vec(0u32..16, 1..200),
        outcomes in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let size = 1u32 << bits;
        let mut aliased = AliasedHybrid::new(bits);
        let mut single = AliasedHybrid::new(bits);
        for (&m, &taken) in multiples.iter().zip(&outcomes) {
            let a = aliased.observe(StaticId::from_raw(s + m * size), taken);
            let b = single.observe(StaticId::from_raw(s), taken);
            prop_assert_eq!(a, b, "ids congruent mod {} must be indistinguishable", size);
        }
    }

    /// Same-direction streams converge despite arbitrary aliasing: every
    /// table entry is only ever trained toward the one direction, so each
    /// touched entry can mispredict at most twice (its two weak states).
    #[test]
    fn uniform_streams_converge_despite_aliasing(
        direction in prop::bool::ANY,
        sids in prop::collection::vec(0u32..32, 64..1500),
    ) {
        let mut p = AliasedHybrid::new(10);
        let mut wrong = 0u64;
        for &b in &sids {
            if !p.observe(StaticId::from_raw(b), direction) {
                wrong += 1;
            }
        }
        let distinct = {
            let mut seen = [false; 32];
            for &b in &sids {
                seen[b as usize] = true;
            }
            seen.iter().filter(|&&x| x).count() as u64
        };
        // 2 weak states × (≤ distinct bimodal entries, plus ≤ distinct
        // + 10 gshare entries — the masked history saturates within 10
        // observations of a constant direction).
        prop_assert!(wrong <= 4 * distinct + 20, "{wrong} wrong with {distinct} ids");
    }

    /// Replaying a stream into a fresh predictor reproduces every
    /// prediction and the final rate exactly.
    #[test]
    fn aliased_predictor_is_deterministic(
        bits in 0u32..10,
        stream in prop::collection::vec((0u32..64, prop::bool::ANY), 1..300),
    ) {
        let mut a = AliasedHybrid::new(bits);
        let mut b = AliasedHybrid::new(bits);
        for &(s, taken) in &stream {
            let x = a.observe(StaticId::from_raw(s), taken);
            let y = b.observe(StaticId::from_raw(s), taken);
            prop_assert_eq!(x, y);
        }
        prop_assert_eq!(a.misprediction_rate(), b.misprediction_rate());
    }
}
