//! CLI contract tests for the `sweep` subcommand: strict argument
//! parsing (unknown, malformed, duplicate, and value-less flags exit 2
//! with usage — the bench-CLI convention), worker-count and
//! `--no-factor` independence of stdout and the JSON report across a
//! ≥500-cell grid, the partial-exit
//! contract of `--max-cells`, skipped-cell diagnostics for degenerate
//! geometries, and the schema pin of the committed `BENCH_sweep.json`
//! artifact.

use std::process::{Command, Output};

use bioperf_core::pareto::ParetoPoint;
use bioperf_core::sweep::SWEEP_SCHEMA;
use bioperf_metrics::{json, Json};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bioperf-loadchar"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn malformed_sweep_command_lines_exit_2_with_usage() {
    for (bad, why) in [
        (vec!["sweep", "--frobnicate", "1"], "unknown flag"),
        (vec!["sweep", "--jobs"], "missing value"),
        (vec!["sweep", "--jobs", "two"], "malformed number"),
        (vec!["sweep", "--jobs", "1", "--jobs", "2"], "duplicate flag"),
        (vec!["sweep", "--l1", "32y2"], "malformed axis value"),
        (vec!["sweep", "--lat", "3:5"], "incomplete latency triple"),
        (vec!["sweep", "--grid", "huge"], "unknown grid"),
        (vec!["sweep", "--scale", "huge"], "unknown scale"),
        (vec!["sweep", "--pred", "oracle"], "unknown predictor"),
        (vec!["sweep", "--prefetch", "psychic"], "unknown prefetcher"),
        (vec!["sweep", "--programs", "nosuch"], "unknown program"),
    ] {
        let out = run(&bad);
        assert_eq!(out.status.code(), Some(2), "{why}: {bad:?} must exit 2");
        let err = stderr(&out);
        assert!(err.contains("error:"), "{why}: diagnostic missing: {err}");
        assert!(err.contains("usage:"), "{why}: usage missing: {err}");
    }
}

#[test]
fn standard_grid_sweep_is_byte_identical_across_worker_counts() {
    // ≥ 500 configurations: the standard preset enumerates 576 cells.
    let dir = std::env::temp_dir().join(format!("bioperf-sweep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("jobs1.json");
    let b = dir.join("jobs4.json");
    let c = dir.join("oracle.json");
    let mk = |extra: &[&str], path: &std::path::Path| {
        let mut args = vec!["sweep", "--grid", "standard", "--programs", "predator"];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--out", path.to_str().expect("utf-8 temp path")]);
        run(&args)
    };
    let seq = mk(&["--jobs", "1"], &a);
    let par = mk(&["--jobs", "4"], &b);
    let oracle = mk(&["--jobs", "4", "--no-factor"], &c);
    assert!(seq.status.success(), "{}", stderr(&seq));
    assert!(par.status.success(), "{}", stderr(&par));
    assert!(oracle.status.success(), "{}", stderr(&oracle));
    assert_eq!(stdout(&seq), stdout(&par), "sweep stdout must not depend on --jobs");
    assert_eq!(
        stdout(&par),
        stdout(&oracle),
        "sweep stdout must not depend on --no-factor"
    );
    let a = std::fs::read_to_string(&a).expect("jobs1 report");
    let b = std::fs::read_to_string(&b).expect("jobs4 report");
    let c = std::fs::read_to_string(&c).expect("oracle report");
    assert_eq!(a, b, "sweep JSON report must be byte-identical across --jobs");
    assert_eq!(b, c, "the factored sweep must match the --no-factor oracle byte for byte");
    let doc = json::parse(&a).expect("report parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SWEEP_SCHEMA));
    let config = doc.get("deterministic").and_then(|d| d.get("config")).expect("config");
    assert_eq!(config.get("cells").and_then(Json::as_u64), Some(576));
    assert_eq!(config.get("complete").and_then(Json::as_u64), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn max_cells_budget_exits_3_and_reports_the_interruption() {
    let out = run(&["sweep", "--programs", "predator", "--max-cells", "3"]);
    assert_eq!(out.status.code(), Some(3), "a budget-capped sweep must exit 3");
    assert!(stdout(&out).contains("sweep incomplete"), "stdout: {}", stdout(&out));
}

#[test]
fn degenerate_cells_are_skipped_with_diagnostics_not_panics() {
    // An L2 axis whose set count is not a power of two: every cell using
    // it is diagnosed and skipped; the sweep itself still succeeds.
    let out = run(&[
        "sweep",
        "--programs",
        "predator",
        "--l1",
        "32x2",
        "--l2",
        "4096x1,3000x1",
        "--line",
        "64",
        "--pred",
        "hybrid",
        "--prefetch",
        "none",
        "--pipe",
        "4x80",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("skipped cells:"), "stdout: {text}");
    assert!(text.contains("set count must be a power of two"), "stdout: {text}");
    // The valid half of the grid still produced a frontier.
    assert!(text.contains("predator Pareto frontier:"), "stdout: {text}");

    // Zero ways takes the ZeroGeometry path of the same machinery.
    let out = run(&["sweep", "--programs", "predator", "--l1", "32x0,32x2"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("zero-sized cache"), "stdout: {}", stdout(&out));
}

fn load_committed_artifact() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_sweep.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("{path} must be committed (regenerate with `cargo run --release --bin bench_sweep`): {e}")
    });
    json::parse(&text).expect("BENCH_sweep.json parses with the in-workspace parser")
}

#[test]
fn committed_sweep_artifact_matches_schema_v1() {
    let doc = load_committed_artifact();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SWEEP_SCHEMA));
    assert_eq!(doc.keys(), vec!["schema", "deterministic"]);
    let det = doc.get("deterministic").expect("deterministic section");
    assert_eq!(det.keys(), vec!["config", "skipped", "frontier"]);
    let config = det.get("config").expect("config");
    assert_eq!(config.keys(), vec!["scale", "seed", "grid_hash", "cells", "programs", "complete"]);
    assert_eq!(config.get("seed").and_then(Json::as_u64), Some(42));
    assert_eq!(config.get("cells").and_then(Json::as_u64), Some(64));
    assert_eq!(config.get("complete").and_then(Json::as_u64), Some(1));

    let frontier = det.get("frontier").expect("frontier");
    let programs = frontier.keys();
    assert_eq!(
        programs,
        vec!["dnapenny", "hmmpfam", "hmmsearch", "hmmcalibrate", "predator", "clustalw"],
        "one frontier per transformed program, in enumeration order"
    );
    for program in programs {
        let Some(Json::Array(points)) = frontier.get(program) else {
            panic!("frontier.{program} is not an array")
        };
        assert!(!points.is_empty(), "frontier.{program} is empty");
        for point in points {
            for key in
                ["cell", "config", "amat", "speedup", "cost", "cycles_original", "cycles_transformed"]
            {
                assert!(point.get(key).is_some(), "frontier.{program} point missing {key}");
            }
        }
    }
}

#[test]
fn committed_frontiers_are_mutually_non_dominated() {
    let doc = load_committed_artifact();
    let frontier = doc.get("deterministic").and_then(|d| d.get("frontier")).expect("frontier");
    for program in frontier.keys() {
        let Some(Json::Array(points)) = frontier.get(program) else { unreachable!() };
        let points: Vec<ParetoPoint> = points
            .iter()
            .map(|p| ParetoPoint {
                id: p.get("cell").and_then(Json::as_u64).expect("cell") as u32,
                amat: p.get("amat").and_then(Json::as_f64).expect("amat"),
                speedup: p.get("speedup").and_then(Json::as_f64).expect("speedup"),
                cost: p.get("cost").and_then(Json::as_u64).expect("cost"),
            })
            .collect();
        for a in &points {
            for b in &points {
                assert!(
                    !a.dominates(b),
                    "{program}: committed frontier cell {} dominates cell {}",
                    a.id,
                    b.id
                );
            }
        }
    }
}
