//! End-to-end pin for the packed trace encoding: a fresh suite run —
//! whose every replay decodes packed 12-byte records back into micro-ops
//! — must reproduce the committed `BENCH_suite.json` deterministic
//! section byte-for-byte, and real recordings must hold to the ≤ 24
//! bytes/op budget the encoding was built for.

use bioperf_core::orchestrate::{run_suite, SuiteConfig};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_metrics::json;
use bioperf_trace::{Recorder, Tape};

/// Seed the committed artifact was generated with (`REPRO_SEED`).
const SEED: u64 = 42;

#[test]
fn packed_replay_reproduces_the_committed_deterministic_section() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_suite.json");
    let text = std::fs::read_to_string(path).expect("BENCH_suite.json is committed");
    let committed = json::parse(&text).expect("committed artifact parses");
    let committed_det = committed.get("deterministic").expect("deterministic section");

    let suite =
        run_suite(SuiteConfig { scale: Scale::Test, seed: SEED, jobs: 2, metrics: true, trace_cap: 0, spill: None })
            .expect("suite");
    // Compact renders compared as strings: every simulated cycle count,
    // cache statistic, and histogram bucket must match the pre-packed
    // artifact exactly.
    assert_eq!(
        suite.deterministic_json().render(),
        committed_det.render(),
        "packed replay must be bit-identical to the committed suite results"
    );
}

#[test]
fn real_recordings_stay_within_the_byte_budget() {
    // ~96 bytes/op before packing (88-byte MicroOp + Vec growth); the
    // acceptance bar is ≤ 24 bytes/op on real traces.
    for program in [ProgramId::Hmmsearch, ProgramId::Clustalw, ProgramId::Dnapenny] {
        let mut tape = Tape::new(Recorder::new());
        registry::run(&mut tape, program, Variant::Original, Scale::Test, SEED);
        let (static_program, rec) = tape.finish();
        let recording = rec.into_recording(static_program);
        assert!(!recording.is_empty());
        let per_op = recording.bytes_per_op();
        assert!(per_op <= 24.0, "{program}: {per_op:.2} bytes/op exceeds the budget");
    }
}
