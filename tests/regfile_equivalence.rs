//! Pins the O(1) intrusive-LRU `RegFile` to the scanned move-to-front
//! reference it replaced — now the conformance crate's [`RefRegFile`],
//! the single canonical oracle — on *real program traces*: both are
//! driven with the exact touch/insert sequence the cycle simulator
//! issues (operand touches, miss-path inserts, destination inserts) and
//! must agree on every residency answer and every evicted value.
//! Identical eviction sequences are what make every `SimResult`
//! bit-identical to the pre-rewrite outputs. Synthetic adversarial
//! sequences live in the conform crate's `tests/refmodel.rs`.

use bioperf_conform::RefRegFile;
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_pipe::{PlatformConfig, RegFile};
use bioperf_trace::{Recorder, Tape};

#[test]
fn lru_matches_scanned_reference_on_real_traces() {
    // Heaviest register-churn programs of the suite, on the two extreme
    // file sizes: the 8-register Pentium 4 (constant eviction) and the
    // 128-register Itanium 2 (where the old scan was most expensive).
    let programs = [ProgramId::Hmmsearch, ProgramId::Blast, ProgramId::Clustalw];
    let platforms = [PlatformConfig::pentium4(), PlatformConfig::itanium2()];
    for program in programs {
        for variant in Variant::ALL {
            if variant == Variant::LoadTransformed && !program.is_transformable() {
                continue;
            }
            let mut tape = Tape::new(Recorder::new());
            registry::run(&mut tape, program, variant, Scale::Test, 42);
            let (prog, rec) = tape.finish();
            assert!(!rec.overflowed());
            let recording = rec.into_recording(prog);
            for platform in platforms {
                let mut fast = RegFile::new(platform.logical_regs);
                let mut slow = RefRegFile::new(platform.logical_regs);
                let mut step = 0u64;
                for op in recording.iter() {
                    // The simulator's access pattern: each source is
                    // touched, and re-inserted on the spill-reload path
                    // if absent; each destination is inserted.
                    for src in op.sources() {
                        let a = fast.touch(src.0);
                        let b = slow.touch(src.0);
                        assert_eq!(a, b, "{program:?}/{variant:?} touch step {step}");
                        if !a {
                            assert_eq!(
                                fast.insert(src.0),
                                slow.insert(src.0),
                                "{program:?}/{variant:?} reload-insert step {step}"
                            );
                        }
                        step += 1;
                    }
                    if let Some(dst) = op.dst {
                        assert_eq!(
                            fast.insert(dst.0),
                            slow.insert(dst.0),
                            "{program:?}/{variant:?} dst-insert step {step}"
                        );
                        step += 1;
                    }
                }
                assert!(step > 10_000, "{program:?}/{variant:?}: trace too small to pin anything");
            }
        }
    }
}
