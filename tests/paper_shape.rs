//! End-to-end assertions of the paper's qualitative claims, checked at
//! small scale (the shapes are scale-invariant).

use bioperf_loadchar::core::characterize::characterize_program;
use bioperf_loadchar::core::LoadCoverage;
use bioperf_loadchar::isa::{OpClass, OpKind};
use bioperf_loadchar::kernels::{registry, ProgramId, Scale, Variant};
use bioperf_loadchar::specmini::{SpecProgram, SpecScale};
use bioperf_loadchar::trace::Tape;

/// Section 2 / Figure 1: loads are a large fraction of executed
/// instructions in every program.
#[test]
fn loads_are_a_major_instruction_class() {
    for program in ProgramId::ALL {
        let r = characterize_program(program, Scale::Test, 42);
        let frac = r.mix.class_fraction(OpClass::Load);
        assert!((0.15..0.55).contains(&frac), "{program}: load fraction {frac}");
    }
}

/// Table 1: promlk is the floating-point outlier; most programs are
/// integer-dominated.
#[test]
fn fp_profile_matches_table1() {
    let promlk = characterize_program(ProgramId::Promlk, Scale::Test, 42);
    assert!(promlk.mix.fp_fraction() > 0.5, "promlk fp {}", promlk.mix.fp_fraction());
    for p in [ProgramId::Blast, ProgramId::Clustalw, ProgramId::Hmmsearch, ProgramId::Dnapenny] {
        let r = characterize_program(p, Scale::Test, 42);
        assert!(r.mix.fp_fraction() < 0.02, "{p}: fp {}", r.mix.fp_fraction());
    }
}

/// Figure 2: the bio programs concentrate >90% of dynamic loads in ≤80
/// static loads; the SPEC-like programs do not.
#[test]
fn load_concentration_contrast() {
    for program in [ProgramId::Hmmsearch, ProgramId::Clustalw, ProgramId::Fasta] {
        let r = characterize_program(program, Scale::Test, 42);
        assert!(
            r.coverage.coverage_at(80) > 0.9,
            "{program}: coverage at 80 = {}",
            r.coverage.coverage_at(80)
        );
    }
    for program in [SpecProgram::Vortex, SpecProgram::Gcc] {
        let mut tape = Tape::new(LoadCoverage::new());
        bioperf_loadchar::specmini::run(&mut tape, program, SpecScale::TEST, 42);
        let (_, cov) = tape.finish();
        assert!(
            cov.coverage_at(80) < 0.9,
            "{program}: coverage at 80 = {} (should be spread out)",
            cov.coverage_at(80)
        );
    }
}

/// Table 2: loads almost always hit L1; AMAT is dominated by the hit
/// latency, with L2/memory contributing only a few percent.
#[test]
fn cache_behaviour_matches_table2() {
    for program in ProgramId::ALL {
        let r = characterize_program(program, Scale::Test, 42);
        let m1 = r.cache.l1.load_miss_ratio();
        // Test-scale traces are short, so compulsory misses weigh more
        // than at the paper-shaped Medium scale (where blast, the worst
        // case, sits at ~1% L1 local and AMAT 3.17 — see EXPERIMENTS.md).
        let (m1_limit, amat_limit) = if program == ProgramId::Blast {
            (0.06, 6.0)
        } else {
            (0.03, 3.5)
        };
        assert!(m1 < m1_limit, "{program}: L1 local miss rate {m1}");
        assert!(r.amat < amat_limit, "{program}: AMAT {} vs 3-cycle L1 hit", r.amat);
        let overall = r.cache.overall_load_memory_ratio();
        assert!(overall < 0.03, "{program}: {overall} of loads reach memory");
    }
}

/// Table 4: the hmm programs have the highest load→branch involvement;
/// promlk the lowest. Sequence branches are hard to predict.
#[test]
fn sequence_profile_matches_table4() {
    let hmm = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
    let promlk = characterize_program(ProgramId::Promlk, Scale::Test, 42);
    assert!(
        hmm.sequences.load_to_branch_fraction() > 0.55,
        "hmmsearch load→branch {}",
        hmm.sequences.load_to_branch_fraction()
    );
    assert!(
        promlk.sequences.load_to_branch_fraction() < hmm.sequences.load_to_branch_fraction(),
        "promlk should be the low end"
    );
    assert!(
        hmm.sequences.sequence_branch_misprediction_rate() > 0.05,
        "sequence branches should be hard: {}",
        hmm.sequences.sequence_branch_misprediction_rate()
    );
    assert!(
        hmm.sequences.loads_after_hard_branch_fraction() > 0.1,
        "hmmsearch after-hard-branch {}",
        hmm.sequences.loads_after_hard_branch_fraction()
    );
}

/// Table 5: hmmsearch's hot loads sit in the Viterbi kernel, hit L1, and
/// feed branches.
#[test]
fn hot_loads_match_table5() {
    let r = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
    assert!(r.hot_loads.len() >= 4);
    for load in r.hot_loads.iter().take(4) {
        assert!(load.frequency > 0.02, "hot load frequency {}", load.frequency);
        assert!(load.l1_miss_rate < 0.02, "hot loads hit L1: {}", load.l1_miss_rate);
        assert_eq!(load.loc.function, "p7_viterbi_original");
    }
}

/// The transformed variants change the *shape* of the code (fewer
/// branches or differently scheduled loads) without changing load counts
/// wildly.
#[test]
fn transformation_changes_code_shape() {
    for program in [ProgramId::Hmmsearch, ProgramId::Clustalw] {
        let mut orig = Tape::new(bioperf_loadchar::trace::consumers::InstrMix::default());
        registry::run(&mut orig, program, Variant::Original, Scale::Test, 42);
        let (_, orig_mix) = orig.finish();
        let mut tr = Tape::new(bioperf_loadchar::trace::consumers::InstrMix::default());
        registry::run(&mut tr, program, Variant::LoadTransformed, Scale::Test, 42);
        let (_, tr_mix) = tr.finish();
        assert!(
            tr_mix.cond_branches() < orig_mix.cond_branches(),
            "{program}: transformed should execute fewer branches"
        );
        let ratio = tr_mix.loads() as f64 / orig_mix.loads() as f64;
        assert!((0.6..1.4).contains(&ratio), "{program}: load count ratio {ratio}");
    }
}

/// The kernels have few static loads; the SPEC-like programs have many
/// (the other half of the Figure 2 contrast).
#[test]
fn static_load_counts_contrast() {
    let mut tape = Tape::new(LoadCoverage::new());
    registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 42);
    let (program, _) = tape.finish();
    let bio_statics = program.count_kind(OpKind::is_load);
    assert!(bio_statics < 80, "hmmsearch: {bio_statics} static loads");

    let mut tape = Tape::new(LoadCoverage::new());
    bioperf_loadchar::specmini::run(&mut tape, SpecProgram::Gcc, SpecScale::TEST, 42);
    let (program, _) = tape.finish();
    let spec_statics = program.count_kind(OpKind::is_load);
    assert!(spec_statics > 2 * bio_statics, "gcc-like: {spec_statics} static loads");
}
