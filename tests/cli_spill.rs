//! CLI contract tests for `suite --spill-dir`: the deterministic section
//! of the metrics snapshot is byte-identical to an in-memory run, the
//! trace cap composes with segmentation as a *total*-op budget, segment
//! sizing without spilling is rejected, and filesystem failures surface
//! as exit 1 with the offending path — never a panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bioperf-loadchar"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bioperf-clispill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// The `deterministic` section of a metrics snapshot, rendered. The
/// `run` section (wall-clock timings, worker counts) is legitimately
/// different between runs and excluded by construction.
fn deterministic_section(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).expect("metrics file");
    let doc = bioperf_metrics::json::parse(&text).expect("valid JSON");
    doc.get("deterministic").expect("deterministic section").render_pretty()
}

#[test]
fn spilled_suite_metrics_match_in_memory_metrics_byte_for_byte() {
    let dir = scratch("bytes");
    let mem_json = dir.join("mem.json");
    let spill_json = dir.join("spill.json");
    let spill_dir = dir.join("segs");

    let mem = run(&["suite", "--jobs", "2", "--metrics", mem_json.to_str().unwrap()]);
    assert!(mem.status.success(), "in-memory suite failed: {}", stderr(&mem));
    let spilled = run(&[
        "suite",
        "--jobs",
        "2",
        "--metrics",
        spill_json.to_str().unwrap(),
        "--spill-dir",
        spill_dir.to_str().unwrap(),
        "--segment-ops",
        "4096",
    ]);
    assert!(spilled.status.success(), "spilled suite failed: {}", stderr(&spilled));

    assert_eq!(
        deterministic_section(&mem_json),
        deterministic_section(&spill_json),
        "deterministic metrics must be byte-identical between memory and spill modes"
    );
    // The printed characterization/evaluation tables are deterministic
    // too; only the trailing "wrote <path> …" line names a different
    // file.
    let table = |out: &Output| {
        stdout(out).lines().filter(|l| !l.starts_with("wrote ")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(table(&mem), table(&spilled), "printed tables must match");
    // The spill directory really was used: one subdirectory per
    // recorded program×variant trace, each holding segment files.
    let traces = std::fs::read_dir(&spill_dir).expect("spill dir").count();
    assert!(traces > 0, "spill directory must contain per-trace subdirectories");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_cap_bounds_total_ops_across_segments_from_the_cli() {
    // Cap far above the 8-op segment size: only *total* accounting
    // across segments can trip it, which is the satellite-5 contract.
    let dir = scratch("cap");
    let out = run(&[
        "suite",
        "--jobs",
        "2",
        "--trace-cap",
        "16",
        "--spill-dir",
        dir.to_str().unwrap(),
        "--segment-ops",
        "8",
    ]);
    assert!(!out.status.success(), "a 16-op total cap must fail the suite");
    let err = stderr(&out);
    assert!(err.contains("suite:"), "stderr: {err}");
    assert!(err.contains("16 ops"), "stderr should report the captured total: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn segment_ops_without_spill_dir_is_a_usage_error() {
    let out = run(&["suite", "--segment-ops", "4096"]);
    assert!(!out.status.success(), "--segment-ops without --spill-dir must be rejected");
    let err = stderr(&out);
    assert!(err.contains("bad suite arguments"), "stderr: {err}");
    assert!(err.contains("usage"), "rejection must reprint usage: {err}");
}

#[test]
fn unwritable_spill_dir_exits_1_with_the_path() {
    let out = run(&[
        "suite",
        "--jobs",
        "1",
        "--spill-dir",
        "/proc/bioperf-definitely-unwritable",
    ]);
    assert!(!out.status.success(), "an unwritable spill dir must fail the suite");
    assert_eq!(out.status.code(), Some(1), "failure must be exit 1, not a panic/abort");
    let err = stderr(&out);
    assert!(err.contains("suite:"), "stderr: {err}");
    assert!(err.contains("/proc/bioperf-definitely-unwritable"), "stderr names the path: {err}");
}
