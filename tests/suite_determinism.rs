//! The suite's cross-worker determinism contract, end to end: a
//! single-threaded run and a 4-worker run of the full study must agree
//! not just on the in-memory results but on the *bytes* of the emitted
//! deterministic metrics JSON (`suite --metrics` / `BENCH_suite.json`).
//!
//! Wall-clock timings are exempt by design — they live in the document's
//! `run` section, which this test deliberately does not compare.

use bioperf_core::orchestrate::{run_suite, SuiteConfig, SUITE_SCHEMA};
use bioperf_kernels::Scale;
use bioperf_metrics::Json;

fn config(jobs: usize) -> SuiteConfig {
    SuiteConfig { scale: Scale::Test, seed: 42, jobs, metrics: true, trace_cap: 0, spill: None }
}

#[test]
fn suite_results_and_metrics_json_are_worker_count_independent() {
    let seq = run_suite(config(1)).expect("suite");
    let par = run_suite(config(4)).expect("suite");

    // Structured results agree…
    assert_eq!(seq.reports.len(), par.reports.len());
    for ((pa, a), (pb, b)) in seq.reports.iter().zip(&par.reports) {
        assert_eq!(pa, pb);
        assert_eq!(a.mix, b.mix, "{pa}: instruction mix");
        assert_eq!(a.cache, b.cache, "{pa}: cache statistics");
        assert_eq!(a.amat, b.amat, "{pa}: AMAT");
    }
    assert_eq!(seq.eval.cells.len(), par.eval.cells.len());
    for (a, b) in seq.eval.cells.iter().zip(&par.eval.cells) {
        assert_eq!((a.program, a.platform), (b.program, b.platform));
        assert_eq!(a.original.cycles, b.original.cycles, "{} original", a.program);
        assert_eq!(a.transformed.cycles, b.transformed.cycles, "{} transformed", a.program);
    }

    // …and so does the merged metric set, byte for byte, both compact
    // and pretty-printed.
    assert_eq!(seq.metrics, par.metrics, "merged metric sets must be equal");
    let seq_bytes = seq.deterministic_json().render_pretty();
    let par_bytes = par.deterministic_json().render_pretty();
    assert_eq!(seq_bytes, par_bytes, "deterministic JSON must be byte-identical");
    assert_eq!(seq.deterministic_json().render(), par.deterministic_json().render());

    // Worker counts differ between the runs and may legitimately differ
    // in the full document — but only inside the `run` section.
    assert_eq!(seq.workers, 1);
    assert_eq!(par.to_json().get("schema").and_then(Json::as_str), Some(SUITE_SCHEMA));
    let run = par.to_json();
    let run = run.get("run").expect("run section");
    assert_eq!(run.get("workers").and_then(Json::as_u64), Some(4));
}

#[test]
fn event_metrics_switch_changes_events_not_results() {
    // metrics=false must not change any simulated number — only drop the
    // raw `events/` series from the output.
    let with = run_suite(config(2)).expect("suite");
    let without = run_suite(SuiteConfig { metrics: false, ..config(2) }).expect("suite");
    for ((pa, a), (_, b)) in with.reports.iter().zip(&without.reports) {
        assert_eq!(a.cache, b.cache, "{pa}: cache stats must not depend on event collection");
    }
    for (a, b) in with.eval.cells.iter().zip(&without.eval.cells) {
        assert_eq!(a.original.cycles, b.original.cycles);
        assert_eq!(a.transformed.cycles, b.transformed.cycles);
    }
    assert!(with.metrics.counter("events/hmmsearch/cache/serviced_l1").is_some());
    assert!(without.metrics.counter("events/hmmsearch/cache/serviced_l1").is_none());
    // The paper series are present either way and agree exactly.
    let key = "char/hmmsearch/instructions";
    assert_eq!(with.metrics.counter(key), without.metrics.counter(key));
    assert!(with.metrics.counter(key).is_some());
}
