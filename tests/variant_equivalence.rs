//! The load transformation must be semantics-preserving: for every
//! transformed program, the Original and LoadTransformed variants must
//! produce bit-identical results — natively, under full tracing, and
//! under cycle simulation (the consumer must never affect results).
//!
//! The same bar applies to *how* a trace is replayed: the suite's
//! single-pass bank replay (one packed decode driving all four platform
//! models at once) must be indistinguishable from four independent
//! sequential replays, and from the conformance reference pipeline.

use bioperf_conform::RefPipeline;
use bioperf_loadchar::core::Characterizer;
use bioperf_loadchar::kernels::{registry, ProgramId, Scale, Variant};
use bioperf_loadchar::pipe::{CycleSim, PlatformConfig};
use bioperf_loadchar::trace::replay::{Recorder, Recording};
use bioperf_loadchar::trace::{NullTracer, Tape};

/// Records one program variant, failing the test on overflow.
fn record(program: ProgramId, scale: Scale, seed: u64) -> Recording {
    let mut tape = Tape::new(Recorder::new());
    registry::run(&mut tape, program, Variant::Original, scale, seed);
    let (static_program, rec) = tape.finish();
    assert!(!rec.overflowed(), "{program}: trace overflowed the recorder");
    rec.into_recording(static_program)
}

#[test]
fn all_transformed_programs_agree_across_variants() {
    for program in ProgramId::TRANSFORMED {
        for seed in [1, 7, 42] {
            let mut t = NullTracer::new();
            let a = registry::run(&mut t, program, Variant::Original, Scale::Test, seed);
            let b = registry::run(&mut t, program, Variant::LoadTransformed, Scale::Test, seed);
            assert_eq!(a, b, "{program} seed {seed}: transformation changed results");
        }
    }
}

#[test]
fn tracing_does_not_change_results() {
    for program in ProgramId::ALL {
        let mut null = NullTracer::new();
        let native = registry::run(&mut null, program, Variant::Original, Scale::Test, 5);

        let mut tape = Tape::new(Characterizer::new());
        let traced = registry::run(&mut tape, program, Variant::Original, Scale::Test, 5);
        assert_eq!(native, traced, "{program}: characterizer perturbed results");

        let mut sim = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
        let simulated = registry::run(&mut sim, program, Variant::Original, Scale::Test, 5);
        assert_eq!(native, simulated, "{program}: cycle simulation perturbed results");
    }
}

#[test]
fn runs_are_seed_deterministic() {
    for program in ProgramId::ALL {
        let mut t = NullTracer::new();
        let a = registry::run(&mut t, program, Variant::Original, Scale::Test, 123);
        let b = registry::run(&mut t, program, Variant::Original, Scale::Test, 123);
        assert_eq!(a, b, "{program}: same seed must reproduce");
        let c = registry::run(&mut t, program, Variant::Original, Scale::Test, 124);
        assert_ne!(a, c, "{program}: different seeds should differ");
    }
}

#[test]
fn bank_replay_matches_four_sequential_replays_at_small_scale() {
    // The suite replays every recording through a bank of all four
    // platform simulators off one decode pass; a platform model inside
    // the bank must produce the same cycle counts and hierarchy stats
    // as a dedicated sequential replay of the same recording.
    for program in ProgramId::ALL {
        let recording = record(program, Scale::Small, 42);
        let platforms = PlatformConfig::all();
        let mut bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
        recording.replay_bank(&mut bank);
        for (platform, banked) in platforms.iter().zip(&bank) {
            let mut solo = CycleSim::new(*platform);
            recording.replay(&mut solo);
            assert_eq!(
                banked.result(),
                solo.result(),
                "{program}/{}: bank replay diverged from a sequential replay",
                platform.name
            );
        }
    }
}

#[test]
fn bank_replay_matches_the_reference_pipeline() {
    // Conformance cross-check of the bank path itself: each optimized
    // simulator fed by the shared decode must agree with the reference
    // pipeline replaying the same recording on the same platform.
    let recording = record(ProgramId::Hmmsearch, Scale::Test, 42);
    let platforms = PlatformConfig::all();
    let mut bank: Vec<CycleSim> = platforms.iter().map(|&p| CycleSim::new(p)).collect();
    recording.replay_bank(&mut bank);
    for (platform, banked) in platforms.iter().zip(&bank) {
        let mut reference = RefPipeline::new(*platform);
        recording.replay(&mut reference);
        assert_eq!(
            banked.result(),
            reference.result(),
            "{}: bank replay diverged from the reference pipeline",
            platform.name
        );
    }
}

#[test]
#[should_panic(expected = "no load-transformed variant")]
fn untransformed_programs_reject_the_transformed_variant() {
    let mut t = NullTracer::new();
    registry::run(&mut t, ProgramId::Blast, Variant::LoadTransformed, Scale::Test, 1);
}
