//! The load transformation must be semantics-preserving: for every
//! transformed program, the Original and LoadTransformed variants must
//! produce bit-identical results — natively, under full tracing, and
//! under cycle simulation (the consumer must never affect results).

use bioperf_loadchar::core::Characterizer;
use bioperf_loadchar::kernels::{registry, ProgramId, Scale, Variant};
use bioperf_loadchar::pipe::{CycleSim, PlatformConfig};
use bioperf_loadchar::trace::{NullTracer, Tape};

#[test]
fn all_transformed_programs_agree_across_variants() {
    for program in ProgramId::TRANSFORMED {
        for seed in [1, 7, 42] {
            let mut t = NullTracer::new();
            let a = registry::run(&mut t, program, Variant::Original, Scale::Test, seed);
            let b = registry::run(&mut t, program, Variant::LoadTransformed, Scale::Test, seed);
            assert_eq!(a, b, "{program} seed {seed}: transformation changed results");
        }
    }
}

#[test]
fn tracing_does_not_change_results() {
    for program in ProgramId::ALL {
        let mut null = NullTracer::new();
        let native = registry::run(&mut null, program, Variant::Original, Scale::Test, 5);

        let mut tape = Tape::new(Characterizer::new());
        let traced = registry::run(&mut tape, program, Variant::Original, Scale::Test, 5);
        assert_eq!(native, traced, "{program}: characterizer perturbed results");

        let mut sim = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
        let simulated = registry::run(&mut sim, program, Variant::Original, Scale::Test, 5);
        assert_eq!(native, simulated, "{program}: cycle simulation perturbed results");
    }
}

#[test]
fn runs_are_seed_deterministic() {
    for program in ProgramId::ALL {
        let mut t = NullTracer::new();
        let a = registry::run(&mut t, program, Variant::Original, Scale::Test, 123);
        let b = registry::run(&mut t, program, Variant::Original, Scale::Test, 123);
        assert_eq!(a, b, "{program}: same seed must reproduce");
        let c = registry::run(&mut t, program, Variant::Original, Scale::Test, 124);
        assert_ne!(a, c, "{program}: different seeds should differ");
    }
}

#[test]
#[should_panic(expected = "no load-transformed variant")]
fn untransformed_programs_reject_the_transformed_variant() {
    let mut t = NullTracer::new();
    registry::run(&mut t, ProgramId::Blast, Variant::LoadTransformed, Scale::Test, 1);
}
