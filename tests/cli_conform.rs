//! CLI contract tests for the `conform` and `suite` subcommands: exit
//! codes and diagnostics for the error paths (trace-capacity overflow,
//! unwritable `--metrics` targets, unknown faults), plus the
//! worker-count-independence of conform's stdout and JSON report.

use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bioperf-loadchar"))
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn suite_trace_cap_overflow_exits_1_with_a_typed_diagnostic() {
    let out = run(&["suite", "--jobs", "2", "--trace-cap", "16"]);
    assert!(!out.status.success(), "16-op recorder cap must fail the suite");
    let err = stderr(&out);
    assert!(err.contains("suite:"), "stderr: {err}");
    assert!(err.contains("capacity"), "stderr: {err}");
    assert!(err.contains("16 ops"), "stderr should report the captured prefix: {err}");
}

#[test]
fn conform_rejects_an_unwritable_metrics_path() {
    let out = run(&[
        "conform",
        "--cases",
        "2",
        "--fuzz-only",
        "--metrics",
        "/nonexistent-dir/conform.json",
    ]);
    assert!(!out.status.success(), "unwritable --metrics path must exit 1");
    let err = stderr(&out);
    assert!(err.contains("error: writing /nonexistent-dir/conform.json"), "stderr: {err}");
}

#[test]
fn conform_rejects_an_unknown_fault_and_lists_the_catalogue() {
    let out = run(&["conform", "--inject", "no-such-fault"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown fault 'no-such-fault'"), "stderr: {err}");
    // The listing names every catalogued fault with its description.
    for name in ["cache-lru-touch", "packed-ssa-resync", "pipe-dropped-flush", "branch-chooser-stale"]
    {
        assert!(err.contains(name), "fault listing missing {name}: {err}");
    }
}

#[test]
fn conform_rejects_malformed_flags() {
    let out = run(&["conform", "--cases"]);
    assert!(!out.status.success(), "--cases without a value must exit 1");
    assert!(stderr(&out).contains("bad conform arguments"));
    let out = run(&["conform", "--frobnicate", "1"]);
    assert!(!out.status.success());
}

#[test]
fn clean_fuzz_run_exits_0_and_stdout_is_worker_count_independent() {
    let seq = run(&["conform", "--cases", "6", "--seed", "9", "--jobs", "1", "--fuzz-only"]);
    let par = run(&["conform", "--cases", "6", "--seed", "9", "--jobs", "2", "--fuzz-only"]);
    assert!(seq.status.success(), "clean fuzz run must exit 0: {}", stderr(&seq));
    assert!(par.status.success());
    let a = stdout(&seq);
    assert!(a.contains("0 divergences"), "stdout: {a}");
    assert_eq!(a, stdout(&par), "conform stdout must not depend on --jobs");
}

#[test]
fn conform_metrics_json_is_byte_identical_across_worker_counts() {
    let dir = std::env::temp_dir().join(format!("bioperf-conform-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let a = dir.join("jobs1.json");
    let b = dir.join("jobs2.json");
    let mk = |jobs: &str, path: &std::path::Path| {
        run(&[
            "conform",
            "--cases",
            "6",
            "--seed",
            "9",
            "--jobs",
            jobs,
            "--fuzz-only",
            "--metrics",
            path.to_str().expect("utf-8 temp path"),
        ])
    };
    let seq = mk("1", &a);
    let par = mk("2", &b);
    assert!(seq.status.success(), "{}", stderr(&seq));
    assert!(par.status.success(), "{}", stderr(&par));
    let a = std::fs::read_to_string(&a).expect("jobs1 report");
    let b = std::fs::read_to_string(&b).expect("jobs2 report");
    assert_eq!(a, b, "conform JSON report must be byte-identical across --jobs");
    assert!(a.contains("\"schema\": \"bioperf-conform/v1\""), "{a}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_fault_is_detected_and_reported() {
    // packed-src-delta has the smallest budget (32 cases), so this stays
    // quick even in debug builds.
    let out = run(&["conform", "--inject", "packed-src-delta", "--fuzz-only"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("fault packed-src-delta detected at case"), "stdout: {text}");
    assert!(text.contains("witness"), "stdout: {text}");
}
