//! The spill mode's equivalence contract, end to end: running the full
//! suite with traces spilled to disk segments and replayed through the
//! streaming double-buffered bank must be *bit-identical* to the
//! all-in-memory suite — per-program hierarchy statistics, per-platform
//! cycle counts, and the bytes of the deterministic metrics JSON — for
//! every program, at any worker count.
//!
//! This is the guarantee that makes `--spill-dir` safe to flip on for
//! traces too large for RAM: it changes where the ops live, never what
//! the models see.

use std::path::PathBuf;

use bioperf_core::orchestrate::{run_suite, SpillConfig, SuiteConfig};
use bioperf_kernels::{registry, ProgramId, Scale, Variant};
use bioperf_pipe::{CycleSim, PlatformConfig};
use bioperf_trace::{Recorder, SpillRecorder, Tape, TraceConsumer};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bioperf-streamed-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(jobs: usize, spill: Option<SpillConfig>) -> SuiteConfig {
    SuiteConfig { scale: Scale::Test, seed: 42, jobs, metrics: true, trace_cap: 0, spill }
}

#[test]
fn streamed_suite_matches_in_memory_suite_for_every_program() {
    let memory = run_suite(config(1, None)).expect("in-memory suite");
    let dir = scratch("j1");
    // Small segments force every trace through multiple spill/prefetch
    // cycles rather than degenerating to one segment per trace.
    let streamed = run_suite(config(1, Some(SpillConfig { dir: dir.clone(), segment_ops: 1 << 12 })))
        .expect("streamed suite");

    // Per-program characterization: the paper-series statistics must be
    // equal, not merely close.
    assert_eq!(memory.reports.len(), streamed.reports.len());
    assert_eq!(memory.reports.len(), ProgramId::ALL.len(), "every program present");
    for ((pa, a), (pb, b)) in memory.reports.iter().zip(&streamed.reports) {
        assert_eq!(pa, pb);
        assert_eq!(a.mix, b.mix, "{pa}: instruction mix");
        assert_eq!(a.cache, b.cache, "{pa}: cache hierarchy statistics");
        assert_eq!(a.amat, b.amat, "{pa}: AMAT");
    }

    // Per-platform evaluation cells: identical simulated cycles both for
    // the original and the load-transformed variant.
    assert_eq!(memory.eval.cells.len(), streamed.eval.cells.len());
    for (a, b) in memory.eval.cells.iter().zip(&streamed.eval.cells) {
        assert_eq!((a.program, a.platform), (b.program, b.platform));
        assert_eq!(a.original, b.original, "{} {} original", a.program, a.platform);
        assert_eq!(a.transformed, b.transformed, "{} {} transformed", a.program, a.platform);
    }

    // The deterministic JSON — what `bench_suite` commits as
    // `BENCH_suite.json` — is byte-identical.
    assert_eq!(
        memory.deterministic_json().render_pretty(),
        streamed.deterministic_json().render_pretty(),
        "deterministic JSON must be byte-identical between memory and spill modes"
    );
    assert_eq!(memory.replay.replayed_ops, streamed.replay.replayed_ops);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_suite_is_worker_count_independent() {
    // The spill mode composes with the job pool: one worker streaming
    // segments sequentially and four workers streaming concurrently (one
    // segmented recording shared per program, different interleavings of
    // loader threads) must still produce the same bytes.
    let dir1 = scratch("seq");
    let dir4 = scratch("par");
    let seq = run_suite(config(1, Some(SpillConfig { dir: dir1.clone(), segment_ops: 1 << 12 })))
        .expect("streamed suite, 1 worker");
    let par = run_suite(config(4, Some(SpillConfig { dir: dir4.clone(), segment_ops: 1 << 12 })))
        .expect("streamed suite, 4 workers");
    assert_eq!(seq.metrics, par.metrics, "merged metric sets must be equal");
    assert_eq!(
        seq.deterministic_json().render_pretty(),
        par.deterministic_json().render_pretty(),
        "deterministic JSON must be byte-identical across worker counts"
    );
    assert_eq!(seq.workers, 1);
    assert_eq!(par.workers, 4);
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn blocked_streamed_bank_matches_per_op_in_memory_replay() {
    // The two replay transports composed: disk-shaped segments (here
    // in-memory, same chunking and headers) *and* block-batched decode
    // through the pipeline's phased block engine, against the plainest
    // possible reference — one op at a time out of the in-memory
    // recording, straight into `consume`. Odd block sizes interact with
    // the segment edges (a block never spans two segments), so every
    // combination exercises mid-stream cursor hand-off.
    let mut tape = Tape::new(Recorder::new());
    registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Test, 42);
    let (program, rec) = tape.finish();
    let recording = rec.into_recording(program);

    let platforms = PlatformConfig::all();
    let reference: Vec<_> = platforms
        .iter()
        .map(|&platform| {
            let mut sim = CycleSim::new(platform);
            let program = recording.program();
            for op in recording.iter() {
                sim.consume(&op, program);
            }
            sim.finish(program);
            sim.into_result()
        })
        .collect();

    for segment_ops in [509, 1 << 12] {
        let mut spill = SpillRecorder::in_memory(segment_ops, usize::MAX);
        for op in recording.iter() {
            spill.consume(&op, recording.program());
        }
        let segmented =
            spill.into_segmented(recording.program().clone()).expect("in-memory spill");
        for block_ops in [1, 127, 4096] {
            let mut bank: Vec<CycleSim> =
                platforms.iter().map(|&p| CycleSim::new(p)).collect();
            segmented.replay_bank_blocks(&mut bank, block_ops).expect("streamed replay");
            for (platform, (sim, want)) in
                platforms.iter().zip(bank.into_iter().zip(&reference))
            {
                assert_eq!(
                    sim.into_result(),
                    *want,
                    "{}: {segment_ops}-op segments, {block_ops}-op blocks",
                    platform.name
                );
            }
        }
    }
}

#[test]
fn segment_size_does_not_leak_into_results() {
    // Segment granularity is an implementation knob: 1 Ki-op segments
    // and one-giant-segment spills must agree byte-for-byte.
    let fine_dir = scratch("fine");
    let coarse_dir = scratch("coarse");
    let fine =
        run_suite(config(2, Some(SpillConfig { dir: fine_dir.clone(), segment_ops: 1 << 10 })))
            .expect("fine-grained spill");
    let coarse = run_suite(config(2, Some(SpillConfig { dir: coarse_dir.clone(), segment_ops: 0 })))
        .expect("default-granularity spill");
    assert_eq!(
        fine.deterministic_json().render_pretty(),
        coarse.deterministic_json().render_pretty(),
        "segment size must not affect any deterministic output"
    );
    let _ = std::fs::remove_dir_all(&fine_dir);
    let _ = std::fs::remove_dir_all(&coarse_dir);
}
