//! End-to-end assertions on the Table 8 / Figure 9 evaluation: who wins,
//! and roughly where. Run at Test scale; the platform ordering is
//! scale-stable.

use bioperf_loadchar::core::evaluate::{evaluate_program, EvalMatrix};
use bioperf_loadchar::kernels::{ProgramId, Scale};
use bioperf_loadchar::pipe::PlatformConfig;

/// Section 5 headline: hmmsearch gains substantially on the Alpha.
#[test]
fn hmmsearch_alpha_speedup_is_large() {
    let cell = evaluate_program(ProgramId::Hmmsearch, PlatformConfig::alpha21264(), Scale::Test, 42);
    assert!(cell.speedup() > 1.3, "Alpha hmmsearch speedup {:.2}", cell.speedup());
}

/// The in-order Itanium still speeds up (Section 5's in-order result).
#[test]
fn hmmsearch_itanium_speedup_is_positive() {
    let cell = evaluate_program(ProgramId::Hmmsearch, PlatformConfig::itanium2(), Scale::Test, 42);
    assert!(cell.speedup() > 1.05, "Itanium hmmsearch speedup {:.2}", cell.speedup());
}

/// The register-scarce, 2-cycle-L1 Pentium 4 benefits least of the
/// out-of-order machines (the paper's register-pressure argument).
#[test]
fn pentium4_benefits_least() {
    let m = EvalMatrix::run(Scale::Test, 42);
    let p4 = m.harmonic_mean_speedup("Pentium 4");
    for other in ["Alpha 21264", "PowerPC G5"] {
        let hm = m.harmonic_mean_speedup(other);
        assert!(hm > p4, "{other} ({hm:.3}) should beat Pentium 4 ({p4:.3})");
    }
}

/// The Alpha has the largest harmonic-mean speedup (paper Figure 9).
#[test]
fn alpha_wins_overall() {
    let m = EvalMatrix::run(Scale::Test, 42);
    let alpha = m.harmonic_mean_speedup("Alpha 21264");
    assert!(alpha > 1.1, "Alpha harmonic mean {alpha:.3}");
    for other in ["PowerPC G5", "Pentium 4", "Itanium 2"] {
        assert!(
            alpha > m.harmonic_mean_speedup(other),
            "Alpha should top {other}: {alpha:.3} vs {:.3}",
            m.harmonic_mean_speedup(other)
        );
    }
}

/// The hmm programs gain more than the small-transformation programs
/// (predator/clustalw/dnapenny) on the Alpha, as in Table 8.
#[test]
fn hmm_programs_gain_most_on_alpha() {
    let alpha = PlatformConfig::alpha21264();
    let hmm = evaluate_program(ProgramId::Hmmsearch, alpha, Scale::Test, 42).speedup();
    for modest in [ProgramId::Predator, ProgramId::Clustalw, ProgramId::Dnapenny] {
        let s = evaluate_program(modest, alpha, Scale::Test, 42).speedup();
        assert!(hmm > s, "hmmsearch ({hmm:.2}) should beat {modest} ({s:.2})");
    }
}

/// Simulated L1 behaviour in the evaluation runs matches Table 2: the
/// programs are latency-bound, not miss-bound, on every platform.
#[test]
fn evaluation_runs_stay_l1_resident() {
    for platform in PlatformConfig::all() {
        let cell = evaluate_program(ProgramId::Hmmsearch, platform, Scale::Test, 42);
        let miss = cell.original.cache.l1.load_miss_ratio();
        assert!(miss < 0.06, "{}: L1 miss rate {miss}", platform.name);
    }
}

/// Speedups come mainly from branch behaviour: the transformed variant
/// never mispredicts more than the original on if-converting platforms.
#[test]
fn transformed_mispredicts_less_where_if_converted() {
    for platform in [PlatformConfig::alpha21264(), PlatformConfig::itanium2()] {
        let cell = evaluate_program(ProgramId::Hmmsearch, platform, Scale::Test, 42);
        assert!(
            cell.transformed.mispredicts <= cell.original.mispredicts,
            "{}: {} vs {}",
            platform.name,
            cell.transformed.mispredicts,
            cell.original.mispredicts
        );
    }
}
