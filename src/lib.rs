//! # bioperf-loadchar
//!
//! A full Rust reproduction of *"Load Instruction Characterization and
//! Acceleration of the BioPerf Programs"* (Ratanaworabhan & Burtscher,
//! IISWC 2006): the nine BioPerf kernels in original and load-transformed
//! source shapes, an ATOM-style taped-execution instrumentation layer,
//! cache / branch-predictor / processor timing models for the paper's
//! four evaluation platforms, and the characterization analyses behind
//! every table and figure.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`isa`] — micro-op model, static-instruction identity, dataflow,
//! * [`trace`] — the [`Tracer`](trace::Tracer) instrumentation interface,
//!   recording [`Tape`](trace::Tape) and no-op
//!   [`NullTracer`](trace::NullTracer),
//! * [`cache`] — set-associative cache hierarchy simulator,
//! * [`branch`] — per-static-branch hybrid predictor,
//! * [`pipe`] — out-of-order / in-order platform timing models,
//! * [`bioseq`] — sequences, scoring matrices, profile HMMs, phylogeny,
//! * [`kernels`] — the nine BioPerf program kernels,
//! * [`specmini`] — SPEC CPU2000-like comparison workloads,
//! * [`core`] — characterization passes and the evaluation harness.
//!
//! # Quickstart
//!
//! ```
//! use bioperf_loadchar::core::characterize::characterize_program;
//! use bioperf_loadchar::kernels::{ProgramId, Scale};
//!
//! let report = characterize_program(ProgramId::Hmmsearch, Scale::Test, 42);
//! // The paper's headline facts hold even at test scale:
//! assert!(report.cache.l1.load_miss_ratio() < 0.02, "loads almost always hit L1");
//! assert!(report.coverage.coverage_at(80) > 0.9, "a few static loads cover everything");
//! assert!(report.sequences.load_to_branch_fraction() > 0.5, "loads feed branches");
//! ```

pub use bioperf_bioseq as bioseq;
pub use bioperf_branch as branch;
pub use bioperf_cache as cache;
pub use bioperf_core as core;
pub use bioperf_isa as isa;
pub use bioperf_kernels as kernels;
pub use bioperf_pipe as pipe;
pub use bioperf_specmini as specmini;
pub use bioperf_trace as trace;
