//! `bioperf-loadchar` — command-line front end to the reproduction.
//!
//! ```text
//! bioperf-loadchar list
//! bioperf-loadchar characterize <program> [scale]
//! bioperf-loadchar candidates   <program> [scale]
//! bioperf-loadchar coverage     <program> [scale]
//! bioperf-loadchar evaluate     <program> [scale]
//! bioperf-loadchar suite [--scale <scale>] [--jobs <n>] [--seed <u64>] [--metrics <out.json>]
//!                        [--trace-cap <ops>] [--spill-dir <dir>] [--segment-ops <ops>]
//! bioperf-loadchar conform [--cases <n>] [--seed <u64>] [--jobs <n>] [--metrics <out.json>]
//!                          [--inject <fault>] [--out <dir>] [--fuzz-only]
//! bioperf-loadchar sweep [--grid smoke|standard] [--scale <scale>] [--seed <u64>]
//!                        [--jobs <n>] [--programs <a,b>] [--l1 <KBxW,..>] [--l2 <KBxW,..>]
//!                        [--line <B,..>] [--lat <L1:L2:MEM,..>] [--pipe <WxROB,..>]
//!                        [--pred <name,..>] [--prefetch <name,..>] [--checkpoint <file>]
//!                        [--max-cells <n>] [--out <report.json>]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bioperf_core::candidates::{find_candidates, CandidateCriteria};
use bioperf_core::characterize::characterize_program;
use bioperf_core::evaluate::{evaluate_program, EvalMatrix};
use bioperf_core::orchestrate::{
    fault, run_conform, run_suite, ConformConfig, FaultId, SpillConfig, SuiteConfig,
};
use bioperf_core::report::{pct, pct2, TextTable};
use bioperf_core::sweep::{parse_prefetcher, run_sweep, SweepConfig, SweepGrid};
use bioperf_branch::PredictorKind;
use bioperf_isa::OpClass;
use bioperf_kernels::{ProgramId, Scale};
use bioperf_pipe::PlatformConfig;

const SEED: u64 = 42;

fn usage() -> ExitCode {
    eprintln!("bioperf-loadchar — IISWC 2006 BioPerf load-characterization reproduction");
    eprintln!();
    eprintln!("usage:");
    eprintln!("  bioperf-loadchar list");
    eprintln!("  bioperf-loadchar characterize <program> [test|small|medium|large]");
    eprintln!("  bioperf-loadchar candidates   <program> [scale]");
    eprintln!("  bioperf-loadchar coverage     <program> [scale]");
    eprintln!("  bioperf-loadchar evaluate     <program> [scale]");
    eprintln!("  bioperf-loadchar suite [--scale <scale>] [--jobs <n>] [--seed <u64>]");
    eprintln!("                         [--metrics <out.json>] [--trace-cap <ops>]");
    eprintln!("                         [--spill-dir <dir>] [--segment-ops <ops>]");
    eprintln!("  bioperf-loadchar conform [--cases <n>] [--seed <u64>] [--jobs <n>]");
    eprintln!("                           [--metrics <out.json>] [--inject <fault>]");
    eprintln!("                           [--out <dir>] [--fuzz-only]");
    eprintln!("  bioperf-loadchar sweep [--grid smoke|standard] [axis and run flags;");
    eprintln!("                         see 'sweep --help' via any bad flag for details]");
    eprintln!();
    eprintln!("suite runs the whole study — nine characterizations plus the 6-program ×");
    eprintln!("4-platform runtime evaluation — on a worker pool (--jobs 0 = all cores).");
    eprintln!("Output is identical for every worker count. --metrics additionally writes");
    eprintln!("every paper metric, raw simulator event, and phase timing as JSON; its");
    eprintln!("\"deterministic\" section is byte-identical for every --jobs value.");
    eprintln!("--trace-cap bounds the replay recorder (0 = default capacity).");
    eprintln!("--spill-dir records traces as fixed-size segment files under <dir> and");
    eprintln!("streams the replay wave from disk (peak memory stays O(segment size);");
    eprintln!("output is byte-identical to in-memory runs). --segment-ops sets the ops");
    eprintln!("per segment file (0 = default) and requires --spill-dir. --trace-cap");
    eprintln!("still bounds each trace's *total* ops across all its segments.");
    eprintln!();
    eprintln!("conform differentially fuzzes every simulator against its naive reference");
    eprintln!("model (seeded, deterministic; shrunk counterexamples land in --out) and");
    eprintln!("cross-checks the nine real program traces end-to-end (--fuzz-only skips");
    eprintln!("that). --inject <fault> arms one catalogued mutation and exits 0 only if");
    eprintln!("the fuzzer detects it within the fault's case budget.");
    eprintln!();
    eprintln!("programs: blast clustalw dnapenny fasta hmmcalibrate hmmpfam hmmsearch");
    eprintln!("          predator promlk   (evaluate: the six transformed programs only)");
    ExitCode::FAILURE
}

fn parse_scale(arg: Option<&str>) -> Option<Scale> {
    match arg {
        None => Some(Scale::Small),
        Some("test") => Some(Scale::Test),
        Some("small") => Some(Scale::Small),
        Some("medium") => Some(Scale::Medium),
        Some("large") => Some(Scale::Large),
        Some(_) => None,
    }
}

fn cmd_list() -> ExitCode {
    let mut table = TextTable::new(&["program", "area", "transformed"]);
    let area = |p: ProgramId| match p {
        ProgramId::Blast | ProgramId::Clustalw | ProgramId::Fasta => "sequence analysis",
        ProgramId::Dnapenny | ProgramId::Promlk => "molecular phylogeny",
        ProgramId::Hmmcalibrate | ProgramId::Hmmpfam | ProgramId::Hmmsearch => "sequence analysis (HMM)",
        ProgramId::Predator => "protein structure",
    };
    for p in ProgramId::ALL {
        table.row_owned(vec![
            p.name().to_string(),
            area(p).to_string(),
            if p.is_transformable() { "yes".into() } else { "no (characterized only)".into() },
        ]);
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cmd_characterize(program: ProgramId, scale: Scale) -> ExitCode {
    let r = characterize_program(program, scale, SEED);
    println!("{program} at {scale:?} scale (seed {SEED}):\n");
    println!("instruction mix ({} total):", r.mix.total());
    for class in OpClass::ALL {
        println!("  {class:<14} {}", pct(r.mix.class_fraction(class)));
    }
    println!("  floating-point {}", pct(r.mix.fp_fraction()));
    println!("\nloads:");
    println!("  static loads            {}", r.static_loads);
    println!("  coverage of hottest 80  {}", pct(r.coverage.coverage_at(80)));
    println!("  L1 local miss rate      {}", pct2(r.cache.l1.load_miss_ratio()));
    println!("  AMAT                    {:.2} cycles", r.amat);
    println!("\nsequences:");
    println!("  load→branch             {}", pct(r.sequences.load_to_branch_fraction()));
    println!("  their mispredict rate   {}", pct(r.sequences.sequence_branch_misprediction_rate()));
    println!("  load after hard branch  {}", pct(r.sequences.loads_after_hard_branch_fraction()));
    ExitCode::SUCCESS
}

fn cmd_candidates(program: ProgramId, scale: Scale) -> ExitCode {
    let r = characterize_program(program, scale, SEED);
    let cands = find_candidates(&r, CandidateCriteria::default());
    if cands.is_empty() {
        println!("{program}: no scheduling candidates found");
        return ExitCode::SUCCESS;
    }
    let mut table = TextTable::new(&["location", "pattern", "freq", "fed mispredict", "score"]);
    for c in &cands {
        table.row_owned(vec![
            format!("{}:{}", c.loc.function, c.loc.line),
            c.reason.to_string(),
            pct(c.frequency),
            pct(c.fed_branch_misprediction_rate),
            format!("{:.4}", c.score),
        ]);
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cmd_coverage(program: ProgramId, scale: Scale) -> ExitCode {
    let r = characterize_program(program, scale, SEED);
    println!("{program}: {} static loads, {} dynamic loads", r.static_loads, r.mix.loads());
    for rank in [1usize, 2, 5, 10, 20, 40, 80] {
        let cov = r.coverage.coverage_at(rank);
        let bar = "#".repeat((cov * 50.0) as usize);
        println!("  top {rank:>3}: {:>6}  {bar}", pct(cov));
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(program: ProgramId, scale: Scale) -> ExitCode {
    if !program.is_transformable() {
        eprintln!("{program} has no load-transformed variant (paper Section 3.3)");
        return ExitCode::FAILURE;
    }
    let mut table =
        TextTable::new(&["platform", "original (cycles)", "transformed", "speedup"]);
    for platform in PlatformConfig::all() {
        if !EvalMatrix::cell_applicable(program, platform.name) {
            table.row_owned(vec![platform.name.into(), "n.a.".into(), "n.a.".into(), "n.a.".into()]);
            continue;
        }
        let cell = evaluate_program(program, platform, scale, SEED);
        table.row_owned(vec![
            platform.name.to_string(),
            cell.original.cycles.to_string(),
            cell.transformed.cycles.to_string(),
            format!("{:+.1}%", (cell.speedup() - 1.0) * 100.0),
        ]);
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cmd_suite(
    scale: Scale,
    jobs: usize,
    seed: u64,
    metrics: Option<&str>,
    trace_cap: usize,
    spill: Option<SpillConfig>,
) -> ExitCode {
    // Raw event collection (the only part with a hot-loop cost) is only
    // switched on when the caller asked for the JSON snapshot.
    let suite = match run_suite(SuiteConfig { scale, seed, jobs, metrics: metrics.is_some(), trace_cap, spill }) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("suite: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("BioPerf load-characterization suite ({scale:?} scale, seed {seed})\n");
    let mut table =
        TextTable::new(&["program", "loads", "L1 local", "AMAT", "cov@80", "load→branch"]);
    for (program, r) in &suite.reports {
        table.row_owned(vec![
            program.name().to_string(),
            pct(r.mix.class_fraction(OpClass::Load)),
            pct2(r.cache.l1.load_miss_ratio()),
            format!("{:.2}", r.amat),
            pct(r.coverage.coverage_at(80)),
            pct(r.sequences.load_to_branch_fraction()),
        ]);
    }
    print!("{}", table.render());

    println!("\nruntime evaluation (simulated cycles, original → load-transformed):\n");
    let platforms: Vec<&str> = PlatformConfig::all().iter().map(|p| p.name).collect();
    let mut header = vec!["program"];
    header.extend(platforms.iter());
    let mut table = TextTable::new(&header);
    for program in ProgramId::TRANSFORMED {
        let mut row = vec![program.name().to_string()];
        for platform in &platforms {
            let cell = suite
                .eval
                .cells
                .iter()
                .find(|c| c.program == program && c.platform == *platform);
            row.push(match cell {
                None => "n.a.".to_string(),
                Some(c) => format!("{:+.1}%", (c.speedup() - 1.0) * 100.0),
            });
        }
        table.row_owned(row);
    }
    print!("{}", table.render());

    println!("\nharmonic-mean speedups:");
    for platform in &platforms {
        println!("  {platform:<16} {:.3}x", suite.eval.harmonic_mean_speedup(platform));
    }

    if let Some(path) = metrics {
        if let Err(e) = std::fs::write(path, suite.to_json().render_pretty()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path} ({} metric series)", suite.metrics.len());
    }
    ExitCode::SUCCESS
}

struct SuiteArgs<'a> {
    scale: Scale,
    jobs: usize,
    seed: u64,
    metrics: Option<&'a str>,
    trace_cap: usize,
    spill_dir: Option<&'a str>,
    segment_ops: usize,
}

impl SuiteArgs<'_> {
    /// The resolved spill configuration, if `--spill-dir` was given.
    fn spill(&self) -> Option<SpillConfig> {
        self.spill_dir
            .map(|dir| SpillConfig { dir: PathBuf::from(dir), segment_ops: self.segment_ops })
    }
}

fn parse_suite_args<'a>(mut it: impl Iterator<Item = &'a str>) -> Option<SuiteArgs<'a>> {
    let mut parsed = SuiteArgs {
        scale: Scale::Test,
        jobs: 0,
        seed: SEED,
        metrics: None,
        trace_cap: 0,
        spill_dir: None,
        segment_ops: 0,
    };
    while let Some(flag) = it.next() {
        let value = it.next()?;
        match flag {
            "--scale" => parsed.scale = parse_scale(Some(value))?,
            "--jobs" => parsed.jobs = value.parse().ok()?,
            "--seed" => parsed.seed = value.parse().ok()?,
            "--metrics" => parsed.metrics = Some(value),
            "--trace-cap" => parsed.trace_cap = value.parse().ok()?,
            "--spill-dir" => parsed.spill_dir = Some(value),
            "--segment-ops" => parsed.segment_ops = value.parse().ok()?,
            _ => return None,
        }
    }
    // Segment sizing only means something when spilling is on.
    if parsed.segment_ops != 0 && parsed.spill_dir.is_none() {
        return None;
    }
    Some(parsed)
}

struct ConformArgs<'a> {
    cases: u64,
    seed: u64,
    jobs: usize,
    metrics: Option<&'a str>,
    inject: Option<&'a str>,
    out: &'a str,
    fuzz_only: bool,
}

fn parse_conform_args<'a>(mut it: impl Iterator<Item = &'a str>) -> Option<ConformArgs<'a>> {
    let mut parsed = ConformArgs {
        cases: 256,
        seed: SEED,
        jobs: 0,
        metrics: None,
        inject: None,
        out: "results/conform",
        fuzz_only: false,
    };
    while let Some(flag) = it.next() {
        if flag == "--fuzz-only" {
            parsed.fuzz_only = true;
            continue;
        }
        let value = it.next()?;
        match flag {
            "--cases" => parsed.cases = value.parse().ok()?,
            "--seed" => parsed.seed = value.parse().ok()?,
            "--jobs" => parsed.jobs = value.parse().ok()?,
            "--metrics" => parsed.metrics = Some(value),
            "--inject" => parsed.inject = Some(value),
            "--out" => parsed.out = value,
            _ => return None,
        }
    }
    Some(parsed)
}

/// Exit code for sweep usage errors, per the bench-CLI convention
/// (strict parsing: unknown, malformed, and duplicate flags all land
/// here rather than silently winning or losing).
const SWEEP_USAGE_EXIT: u8 = 2;

/// Exit code of a sweep that ran cleanly but left cells unmeasured
/// because `--max-cells` capped the invocation.
const SWEEP_PARTIAL_EXIT: u8 = 3;

fn sweep_usage() {
    eprintln!("usage: bioperf-loadchar sweep [--grid smoke|standard] [--scale <scale>]");
    eprintln!("           [--seed <u64>] [--jobs <n>] [--programs <a,b>]");
    eprintln!("           [--l1 <KBxWAYS,..>] [--l2 <KBxWAYS,..>] [--line <BYTES,..>]");
    eprintln!("           [--lat <L1:L2:MEM,..>] [--pipe <WIDTHxROB,..>]");
    eprintln!("           [--pred <hybrid|aliased|bimodal,..>]");
    eprintln!("           [--prefetch <none|nextline|stride,..>]");
    eprintln!("           [--checkpoint <file>] [--max-cells <n>] [--out <report.json>]");
    eprintln!("           [--no-factor]");
    eprintln!();
    eprintln!("Sweeps the configuration grid (axis flags override the preset's axes),");
    eprintln!("replaying both variants of each program through every cell, and prints");
    eprintln!("each program's Pareto frontier over (AMAT, speedup, hardware cost).");
    eprintln!("Output is byte-identical for every --jobs value. --checkpoint appends");
    eprintln!("completed cells to a resumable bioperf-sweep/v1 file; --max-cells bounds");
    eprintln!("new measurements per invocation (exit {SWEEP_PARTIAL_EXIT} while cells remain). --out writes");
    eprintln!("the deterministic JSON report. --no-factor disables the factored");
    eprintln!("cache-pass/timing-pass evaluation (slower; bit-identical output).");
}

struct SweepArgs<'a> {
    cfg: SweepConfig,
    out: Option<&'a str>,
}

/// Strict sweep-flag parser: every flag takes exactly one value, appears
/// at most once, and must parse; anything else is a usage error naming
/// the offender.
fn parse_sweep_args<'a>(mut it: impl Iterator<Item = &'a str>) -> Result<SweepArgs<'a>, String> {
    fn split_list(value: &str) -> impl Iterator<Item = &str> {
        value.split(',').filter(|s| !s.is_empty())
    }
    fn pair(item: &str, sep: char) -> Result<(&str, &str), String> {
        item.split_once(sep).ok_or_else(|| format!("malformed value '{item}' (expected A{sep}B)"))
    }
    fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("malformed number '{s}'"))
    }

    let mut grid = SweepGrid::smoke();
    let mut grid_flag: Option<&str> = None;
    let mut overrides: Vec<(&str, &str)> = Vec::new();
    let mut args = SweepArgs {
        cfg: SweepConfig {
            scale: Scale::Test,
            seed: SEED,
            jobs: 0,
            programs: Vec::new(),
            grid: SweepGrid::smoke(),
            checkpoint: None,
            max_cells: 0,
            factor: true,
        },
        out: None,
    };
    let mut seen: Vec<&str> = Vec::new();
    while let Some(flag) = it.next() {
        if seen.contains(&flag) {
            return Err(format!("duplicate flag {flag}"));
        }
        seen.push(flag);
        if flag == "--no-factor" {
            args.cfg.factor = false;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag {
            "--grid" => grid_flag = Some(value),
            "--scale" => {
                args.cfg.scale =
                    parse_scale(Some(value)).ok_or_else(|| format!("unknown scale '{value}'"))?;
            }
            "--seed" => args.cfg.seed = num(value)?,
            "--jobs" => args.cfg.jobs = num(value)?,
            "--max-cells" => args.cfg.max_cells = num(value)?,
            "--checkpoint" => args.cfg.checkpoint = Some(PathBuf::from(value)),
            "--out" => args.out = Some(value),
            "--programs" => {
                for name in split_list(value) {
                    let p = ProgramId::from_name(name)
                        .ok_or_else(|| format!("unknown program '{name}'"))?;
                    args.cfg.programs.push(p);
                }
            }
            "--l1" | "--l2" | "--line" | "--lat" | "--pipe" | "--pred" | "--prefetch" => {
                overrides.push((flag, value));
            }
            _ => return Err(format!("unknown flag {flag}")),
        }
    }
    if let Some(name) = grid_flag {
        grid = match name {
            "smoke" => SweepGrid::smoke(),
            "standard" => SweepGrid::standard(),
            _ => return Err(format!("unknown grid '{name}' (smoke or standard)")),
        };
    }
    // Axis overrides replace the preset's axis wholesale, in flag order.
    for (flag, value) in overrides {
        match flag {
            "--l1" | "--l2" => {
                let mut axis = Vec::new();
                for item in split_list(value) {
                    let (kb, ways) = pair(item, 'x')?;
                    axis.push((num(kb)?, num(ways)?));
                }
                if flag == "--l1" {
                    grid.l1 = axis;
                } else {
                    grid.l2 = axis;
                }
            }
            "--line" => {
                grid.line = split_list(value).map(num).collect::<Result<_, _>>()?;
            }
            "--lat" => {
                let mut axis = Vec::new();
                for item in split_list(value) {
                    let (l1, rest) = pair(item, ':')?;
                    let (l2, mem) = pair(rest, ':')?;
                    axis.push((num(l1)?, num(l2)?, num(mem)?));
                }
                grid.lat = axis;
            }
            "--pipe" => {
                let mut axis = Vec::new();
                for item in split_list(value) {
                    let (width, rob) = pair(item, 'x')?;
                    axis.push((num(width)?, num(rob)?));
                }
                grid.pipe = axis;
            }
            "--pred" => {
                let mut axis = Vec::new();
                for name in split_list(value) {
                    axis.push(
                        PredictorKind::from_name(name)
                            .ok_or_else(|| format!("unknown predictor '{name}'"))?,
                    );
                }
                grid.pred = axis;
            }
            "--prefetch" => {
                let mut axis = Vec::new();
                for name in split_list(value) {
                    axis.push(
                        parse_prefetcher(name)
                            .ok_or_else(|| format!("unknown prefetcher '{name}'"))?,
                    );
                }
                grid.prefetch = axis;
            }
            _ => unreachable!("only axis flags are deferred"),
        }
    }
    args.cfg.grid = grid;
    Ok(args)
}

fn cmd_sweep(args: &SweepArgs) -> ExitCode {
    let result = match run_sweep(&args.cfg) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Worker count and cache-hit statistics go to stderr: stdout and the
    // JSON report are byte-identical for every --jobs value and for any
    // interrupt/resume split of the same sweep.
    eprintln!(
        "sweep: {} cells x {} programs on {} workers \
         ({} replayed, {} from checkpoint, {} traces recorded)",
        result.grid.cells(),
        result.programs.len(),
        result.workers,
        result.computed,
        result.cached,
        result.recorded,
    );

    print!("{}", result.render_table());
    if !result.complete {
        println!(
            "sweep incomplete: --max-cells {} left cells unmeasured (rerun to continue)",
            args.cfg.max_cells
        );
    }

    if let Some(path) = args.out {
        if let Err(e) = std::fs::write(path, result.to_json().render_pretty()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if result.complete {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(SWEEP_PARTIAL_EXIT)
    }
}

fn cmd_conform(args: &ConformArgs) -> ExitCode {
    let injected = match args.inject {
        None => None,
        Some(name) => match FaultId::parse(name) {
            Some(f) => Some(f),
            None => {
                eprintln!("error: unknown fault '{name}'; catalogued faults:");
                for f in FaultId::ALL {
                    eprintln!("  {:<22} {}", f.name(), f.describe());
                }
                return ExitCode::FAILURE;
            }
        },
    };
    if injected.is_some() && !fault::injection_compiled() {
        eprintln!("error: fault-injection hooks are not compiled in");
        eprintln!("(build with bioperf-conform's default `inject` feature)");
        return ExitCode::FAILURE;
    }

    // Mutation mode runs exactly the fault's case budget: exit status is
    // the harness's answer to "would the fuzzer catch this bug in time".
    let cases = injected.map_or(args.cases, FaultId::budget);
    let result = match run_conform(&ConformConfig {
        cases,
        seed: args.seed,
        jobs: args.jobs,
        inject: injected,
        check_programs: !args.fuzz_only,
        out_dir: Some(PathBuf::from(args.out)),
    }) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("conform: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Throughput and worker count go to stderr: stdout (like the JSON
    // report) is byte-identical for every --jobs value.
    let secs = result.elapsed.as_secs_f64();
    eprintln!(
        "conform: {} cases in {secs:.2}s on {} workers ({:.0} cases/sec)",
        result.cases,
        result.workers,
        if secs > 0.0 { result.cases as f64 / secs } else { 0.0 }
    );

    let status = if let Some(f) = injected {
        match result.first_detection() {
            Some(index) => {
                let witness = result.divergent.first().and_then(|o| o.divergence.as_ref());
                let (component, len) =
                    witness.map_or(("?", 0), |ce| (ce.component, ce.ops.len()));
                println!(
                    "fault {f} detected at case {index} (budget {}): {component} diverged, \
                     {len}-op witness",
                    f.budget()
                );
                ExitCode::SUCCESS
            }
            None => {
                println!("fault {f} ESCAPED its {}-case budget", f.budget());
                ExitCode::FAILURE
            }
        }
    } else {
        println!("conformance fuzz: {} cases, seed {}", result.cases, result.seed);
        println!("  {} stream ops, {} divergences", result.fuzz_ops, result.divergent.len());
        for outcome in &result.divergent {
            let ce = outcome.divergence.as_ref().expect("divergent cases carry a counterexample");
            println!(
                "  case {} ({}, stream seed {:#x}): {} diverged — {}",
                outcome.index, outcome.platform, outcome.seed, ce.component, ce.detail
            );
        }
        if !result.programs.is_empty() {
            println!("program cross-checks:");
            for check in &result.programs {
                match &check.divergence {
                    None => println!(
                        "  {:<14} ok ({} ops, {} platforms)",
                        check.program.name(),
                        check.ops,
                        check.platforms
                    ),
                    Some(d) => println!("  {:<14} DIVERGED: {d}", check.program.name()),
                }
            }
        }
        for path in &result.artifacts {
            println!("wrote counterexample {}", path.display());
        }
        if result.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
    };

    if let Some(path) = args.metrics {
        if let Err(e) = std::fs::write(path, result.to_json().render_pretty()) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    status
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("list") => cmd_list(),
        Some("suite") => {
            let Some(suite_args) = parse_suite_args(it) else {
                eprintln!("error: bad suite arguments");
                return usage();
            };
            let spill = suite_args.spill();
            cmd_suite(
                suite_args.scale,
                suite_args.jobs,
                suite_args.seed,
                suite_args.metrics,
                suite_args.trace_cap,
                spill,
            )
        }
        Some("conform") => {
            let Some(conform_args) = parse_conform_args(it) else {
                eprintln!("error: bad conform arguments");
                return usage();
            };
            cmd_conform(&conform_args)
        }
        Some("sweep") => match parse_sweep_args(it) {
            Ok(sweep_args) => cmd_sweep(&sweep_args),
            Err(e) => {
                eprintln!("error: {e}");
                sweep_usage();
                ExitCode::from(SWEEP_USAGE_EXIT)
            }
        },
        Some(cmd @ ("characterize" | "candidates" | "coverage" | "evaluate")) => {
            let Some(program) = it.next().and_then(ProgramId::from_name) else {
                eprintln!("error: expected a program name");
                return usage();
            };
            let Some(scale) = parse_scale(it.next()) else {
                eprintln!("error: unknown scale");
                return usage();
            };
            match cmd {
                "characterize" => cmd_characterize(program, scale),
                "candidates" => cmd_candidates(program, scale),
                "coverage" => cmd_coverage(program, scale),
                "evaluate" => cmd_evaluate(program, scale),
                _ => unreachable!("matched above"),
            }
        }
        _ => usage(),
    }
}
