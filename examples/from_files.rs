//! Drive the kernels from on-disk inputs: save a profile HMM in the
//! HMMER2-style text format and a character matrix in PHYLIP format,
//! load both back, and analyze them — the file-based workflow a real
//! BioPerf run uses.
//!
//! ```sh
//! cargo run --release --example from_files
//! ```

use std::error::Error;
use std::fs;

use bioperf_loadchar::bioseq::alphabet::Alphabet;
use bioperf_loadchar::bioseq::phylip::{self, PhylipMatrix};
use bioperf_loadchar::bioseq::plan7::Plan7Model;
use bioperf_loadchar::bioseq::plan7_io;
use bioperf_loadchar::bioseq::plan7_trace::viterbi_trace;
use bioperf_loadchar::bioseq::SeqGen;

fn main() -> Result<(), Box<dyn Error>> {
    let dir = std::env::temp_dir().join("bioperf-loadchar-example");
    fs::create_dir_all(&dir)?;

    // --- Profile HMM round trip -----------------------------------------
    let mut gen = SeqGen::new(42);
    let family = gen.protein_family(8, 60, 0.15);
    let model = Plan7Model::from_family(&family, 42);
    let hmm_path = dir.join("family.p7");
    fs::write(&hmm_path, plan7_io::to_text(&model))?;
    println!("wrote {} ({} match states)", hmm_path.display(), model.m);

    let loaded = plan7_io::from_text(&fs::read_to_string(&hmm_path)?)?;
    assert_eq!(loaded, model, "round trip must be exact");

    // Score a family member and show its alignment.
    let hit = &family[2];
    let trace = viterbi_trace(&loaded, hit);
    println!(
        "family member scores {} and threads {} of {} match states",
        trace.score,
        trace.match_states().len(),
        loaded.m
    );
    let decoy = gen.random_protein(60);
    println!("a random decoy scores {}", viterbi_trace(&loaded, &decoy).score);

    // --- PHYLIP round trip ------------------------------------------------
    let rows = gen.dna_character_matrix(6, 40);
    let matrix = PhylipMatrix {
        names: (0..6).map(|i| format!("taxon{i}")).collect(),
        rows,
    };
    let phy_path = dir.join("infile.phy");
    fs::write(&phy_path, phylip::format(&matrix, Alphabet::Dna))?;
    println!("\nwrote {} ({} taxa x {} sites)", phy_path.display(), matrix.species(), matrix.sites());

    let loaded = phylip::parse(&fs::read_to_string(&phy_path)?, Alphabet::Dna)?;
    assert_eq!(loaded, matrix);

    // A quick Fitch parsimony score of the star join, dnapenny-style.
    let mut steps = 0u32;
    for site in 0..loaded.sites() {
        let mut inter = 0xFu8;
        for row in &loaded.rows {
            inter &= 1 << row[site];
        }
        if inter == 0 {
            steps += 1;
        }
    }
    println!("star-topology Fitch lower bound: {steps} steps over {} sites", loaded.sites());

    println!("\n(files left in {} for inspection)", dir.display());
    Ok(())
}
