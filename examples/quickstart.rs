//! Quickstart: characterize one BioPerf program and print the paper's
//! headline facts about it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bioperf_loadchar::core::characterize::characterize_program;
use bioperf_loadchar::isa::OpClass;
use bioperf_loadchar::kernels::{ProgramId, Scale};

fn main() {
    let program = ProgramId::Hmmsearch;
    println!("characterizing {program} (class-B-like synthetic input)...\n");
    let r = characterize_program(program, Scale::Small, 42);

    println!("instruction mix:");
    for class in OpClass::ALL {
        println!("  {class:<14} {:5.1}%", r.mix.class_fraction(class) * 100.0);
    }

    println!("\nstatic vs dynamic loads:");
    println!("  {} static loads produced {} dynamic loads", r.static_loads, r.mix.loads());
    println!("  the 10 hottest cover {:.1}%", r.coverage.coverage_at(10) * 100.0);
    println!("  the 80 hottest cover {:.1}%", r.coverage.coverage_at(80) * 100.0);

    println!("\ncache behaviour (Alpha 21264 reference hierarchy):");
    println!("  L1 local load miss rate {:.2}%", r.cache.l1.load_miss_ratio() * 100.0);
    println!("  average memory access time {:.2} cycles (L1 hit costs 3)", r.amat);

    println!("\nwhy the L1 hit latency still hurts:");
    println!(
        "  {:.1}% of loads feed a conditional branch through a tight chain",
        r.sequences.load_to_branch_fraction() * 100.0
    );
    println!(
        "  those branches mispredict {:.1}% of the time",
        r.sequences.sequence_branch_misprediction_rate() * 100.0
    );
    println!(
        "  {:.1}% of loads start dependent chains right after a hard-to-predict branch",
        r.sequences.loads_after_hard_branch_fraction() * 100.0
    );

    println!("\nhottest loads (the paper's Table 5 for this run):");
    for load in r.hot_loads.iter().take(5) {
        println!(
            "  {:>5}  freq {:5.2}%  L1 miss {:5.2}%  fed-branch mispredict {:5.1}%  {}",
            load.sid.to_string(),
            load.frequency * 100.0,
            load.l1_miss_rate * 100.0,
            load.branch_misprediction_rate * 100.0,
            load.loc
        );
    }
}
