//! Cache explorer: sweep L1 geometry and latency for one program and
//! watch the paper's Table 2 story emerge — miss rates stay tiny across
//! configurations, so AMAT tracks the hit latency almost exactly.
//!
//! ```sh
//! cargo run --release --example cache_explorer
//! ```

use bioperf_loadchar::cache::{CacheConfig, CacheSim, Hierarchy, LatencyConfig};
use bioperf_loadchar::kernels::{registry, ProgramId, Scale, Variant};
use bioperf_loadchar::trace::Tape;

fn run_with(l1_kb: u64, ways: u32, l1_lat: u64) -> (f64, f64) {
    let hierarchy = Hierarchy::new(
        CacheConfig::new(l1_kb * 1024, ways, 64),
        CacheConfig::new(4 * 1024 * 1024, 1, 64),
        LatencyConfig { l1: l1_lat, l2: 5, memory: 72 },
    );
    let mut tape = Tape::new(CacheSim::new(hierarchy));
    registry::run(&mut tape, ProgramId::Hmmsearch, Variant::Original, Scale::Small, 42);
    let (_, sim) = tape.finish();
    let h = sim.into_hierarchy();
    (h.stats().l1.load_miss_ratio(), h.amat())
}

fn main() {
    println!("hmmsearch on varying L1 data caches (L2: 4 MB direct-mapped):\n");
    println!("{:<22} {:>14} {:>10}", "L1 configuration", "L1 miss rate", "AMAT");
    for (kb, ways) in [(8, 1), (16, 2), (32, 2), (64, 2), (128, 4)] {
        let (miss, amat) = run_with(kb, ways, 3);
        println!("{:<22} {:>13.3}% {:>9.2}", format!("{kb} KB {ways}-way, 3 cyc"), miss * 100.0, amat);
    }
    println!();
    for lat in [1, 2, 3, 4] {
        let (_, amat) = run_with(64, 2, lat);
        println!("{:<22} {:>14} {:>9.2}", format!("64 KB 2-way, {lat} cyc"), "", amat);
    }
    println!("\nExpected shape: miss rates stay well under 2% even at 8 KB (the working");
    println!("set is chunked), so AMAT ≈ the configured hit latency — the paper's");
    println!("argument for why the *hit* latency, not misses, is what matters here.");
}
