//! Instrument your own kernel: write code against the [`Tracer`]
//! interface once, run it natively *and* under full characterization.
//!
//! The kernel below is a binary search over a sorted table — a classic
//! load→compare→branch chain with a hard-to-predict branch, exactly the
//! pattern the paper shows defeats latency-hiding. The example
//! characterizes it and then simulates both a "tight" and a
//! "load-hoisted" variant on the Alpha model.
//!
//! ```sh
//! cargo run --release --example instrument_your_kernel
//! ```

use bioperf_loadchar::core::Characterizer;
use bioperf_loadchar::isa::here;
use bioperf_loadchar::kernels::Scale;
use bioperf_loadchar::pipe::{CycleSim, PlatformConfig};
use bioperf_loadchar::trace::{NullTracer, Tape, Tracer};

/// Classic binary search, instrumented: each probe loads `table[mid]`,
/// compares, and branches on the (data-dependent, hard) outcome.
fn binary_search<T: Tracer>(t: &mut T, table: &[u64], key: u64) -> Option<usize> {
    const F: &str = "binary_search";
    let (mut lo, mut hi) = (0usize, table.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        let v = t.int_load(here!(F), &table[mid]);
        let c = t.int_op(here!(F), &[v]);
        if t.branch(here!(F), &[c], table[mid] == key) {
            return Some(mid);
        }
        if t.branch(here!(F), &[c], table[mid] < key) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    None
}

fn workload<T: Tracer>(t: &mut T, table: &[u64], queries: &[u64]) -> usize {
    queries.iter().filter_map(|&q| binary_search(t, table, q)).count()
}

fn main() {
    let _ = Scale::Test; // scales are for the built-in kernels; ours is custom
    let table: Vec<u64> = (0..4096u64).map(|i| i * 3).collect();
    let queries: Vec<u64> = (0..20_000u64).map(|i| (i.wrapping_mul(2654435761)) % 16384).collect();

    // 1. Run natively (instrumentation compiles away).
    let mut null = NullTracer::new();
    let hits = workload(&mut null, &table, &queries);
    println!("native run: {hits} of {} keys found\n", queries.len());

    // 2. Characterize like an ATOM profiling run.
    let mut tape = Tape::new(Characterizer::new());
    workload(&mut tape, &table, &queries);
    let (program, ch) = tape.finish();
    let report = ch.into_report(program, 3);
    println!("characterization:");
    println!("  {} instructions, {} loads", report.mix.total(), report.mix.loads());
    println!("  L1 local miss rate {:.2}%", report.cache.l1.load_miss_ratio() * 100.0);
    println!(
        "  {:.1}% of loads feed branches; those branches mispredict {:.1}%",
        report.sequences.load_to_branch_fraction() * 100.0,
        report.sequences.sequence_branch_misprediction_rate() * 100.0
    );

    // 3. Time it on the Alpha model.
    let mut sim_tape = Tape::new(CycleSim::new(PlatformConfig::alpha21264()));
    workload(&mut sim_tape, &table, &queries);
    let (_, sim) = sim_tape.finish();
    let r = sim.into_result();
    println!("\nAlpha 21264 model: {} cycles, IPC {:.2}, mispredict rate {:.1}%",
        r.cycles, r.ipc(), r.mispredict_rate() * 100.0);
    println!("\nThe search's load latency is unhideable: every probe's address depends");
    println!("on the previous probe's branch — the paper's load→branch pathology in");
    println!("its purest form.");
}
