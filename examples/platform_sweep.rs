//! Platform sweep: simulate one program's original and load-transformed
//! variants across the four Table 7 platform models, plus a hypothetical
//! single-cycle-L1 machine to isolate the paper's claim that the L1 *hit*
//! latency is the bottleneck.
//!
//! ```sh
//! cargo run --release --example platform_sweep [hmmsearch|predator|...]
//! ```

use bioperf_loadchar::core::evaluate::evaluate_program;
use bioperf_loadchar::kernels::{ProgramId, Scale};
use bioperf_loadchar::pipe::PlatformConfig;

fn main() {
    let program = std::env::args()
        .nth(1)
        .and_then(|n| ProgramId::from_name(&n))
        .unwrap_or(ProgramId::Hmmsearch);
    assert!(
        program.is_transformable(),
        "{program} has no load-transformed variant; pick one of the six transformed programs"
    );
    println!("sweeping {program} across platform models (Small scale)...\n");
    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "platform", "original (cyc)", "transformed", "speedup"
    );

    let mut platforms = PlatformConfig::all().to_vec();
    // The counterfactual the paper argues from: an Alpha whose L1 hit
    // took a single cycle would have far less to gain.
    let mut single_cycle = PlatformConfig::alpha21264();
    single_cycle.name = "Alpha w/ 1-cycle L1";
    single_cycle.int_load_latency = 1;
    single_cycle.fp_load_latency = 2;
    platforms.push(single_cycle);

    for platform in platforms {
        let cell = evaluate_program(program, platform, Scale::Small, 42);
        println!(
            "{:<24} {:>14} {:>14} {:>+8.1}%",
            platform.name,
            cell.original.cycles,
            cell.transformed.cycles,
            (cell.speedup() - 1.0) * 100.0
        );
    }
    println!("\nExpected shape: the 3-cycle-L1 out-of-order machines gain the most; the");
    println!("hypothetical 1-cycle-L1 Alpha gains much less — the benefit really does");
    println!("come from hiding the multi-cycle L1 hit latency.");
}
